"""Canonical configuration keys (timestamp rank normalisation).

Two configurations that differ only in the rational values of their
timestamps — not in the relative order of operations — describe the same
abstract state: timestamps encode *per-variable* modification order, and
every comparison the semantics performs (``Obs``, the ``⊗`` merge,
``maxTS``, ``last``) is between operations on the same variable.
Cross-variable timestamp relationships are semantically irrelevant, so
the canonical key replaces each timestamp by its rank *within its
(component, variable) group*.  This is strictly stronger than a global
ranking: two interleavings that produce the same per-variable orders but
different cross-variable numeric interleavings collapse to one state.

Soundness: an order-isomorphic per-variable relabelling is a bisimulation
— the enabled transitions, placement choices and view updates of the
semantics are invariant under it (the numeric value chosen by ``fresh``
never feeds back into behaviour, only its per-variable position does).
The property suite cross-validates this by comparing terminal outcomes
of canonical vs raw exploration over random programs.

Cross-component references (modification views span both components) are
resolved through the program's variable partition.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.lang.program import Program
from repro.memory.actions import Op
from repro.memory.state import ComponentState
from repro.semantics.config import Config
from repro.util.rationals import rank_map


def _var_ranks(state: ComponentState) -> Dict:
    """rank maps per variable: var -> {ts -> rank}."""
    by_var: Dict = {}
    for op in state.ops:
        by_var.setdefault(op.act.var, []).append(op.ts)
    return {var: rank_map(ts_list) for var, ts_list in by_var.items()}


def canonical_key(program: Program, cfg: Config) -> Tuple:
    """A hashable key identifying ``cfg`` up to per-variable timestamp
    relabelling."""
    g_ranks = _var_ranks(cfg.gamma)
    b_ranks = _var_ranks(cfg.beta)
    client_vars = program.client_var_names

    def enc_op(op: Op) -> Tuple:
        ranks = g_ranks if op.act.var in client_vars else b_ranks
        return (op.act, ranks[op.act.var][op.ts])

    def enc_state(state: ComponentState) -> Tuple:
        ops = frozenset(enc_op(op) for op in state.ops)
        tview = tuple(
            sorted((key, enc_op(op)) for key, op in state.tview.items())
        )
        mview = tuple(
            sorted(
                (
                    (
                        enc_op(op),
                        tuple(sorted((x, enc_op(o)) for x, o in view.items())),
                    )
                    for op, view in state.mview.items()
                ),
                key=repr,
            )
        )
        cvd = frozenset(enc_op(op) for op in state.cvd)
        return (ops, tview, mview, cvd)

    cmds = tuple(sorted(cfg.cmds.items(), key=lambda kv: kv[0]))
    locals_ = tuple(
        sorted(
            (tid, ls.items_sorted()) for tid, ls in cfg.locals.items()
        )
    )
    return (cmds, locals_, enc_state(cfg.gamma), enc_state(cfg.beta))


def client_state_key(program: Program, cfg: Config) -> Tuple:
    """Canonical key of the *client-observable* part of a configuration.

    Used by the refinement machinery (paper §6.1): client-projected local
    states plus the canonicalised client component.  Library registers
    (``LVar_L``) are excluded from local states.
    """
    g_ranks = _var_ranks(cfg.gamma)
    lib_regs = program.lib_registers()

    def enc_op(op: Op) -> Tuple:
        return (op.act, g_ranks[op.act.var][op.ts])

    gamma = cfg.gamma
    ops = frozenset(enc_op(op) for op in gamma.ops)
    tview = tuple(sorted((key, enc_op(op)) for key, op in gamma.tview.items()))
    cvd = frozenset(enc_op(op) for op in gamma.cvd)
    locals_ = tuple(
        sorted(
            (
                tid,
                tuple(
                    sorted(
                        (r, v) for r, v in ls.items() if r not in lib_regs
                    )
                ),
            )
            for tid, ls in cfg.locals.items()
        )
    )
    return (locals_, ops, tview, cvd)
