"""The combined operational semantics and state-space exploration.

``config``/``step`` implement the ``=⇒`` relation of Section 3.2: program
transitions (Figure 4) constrained by the memory semantics (Figure 5) and
the abstract object semantics (Section 4), with client steps executing
against ``γ`` and library steps against ``β``.

``explore`` performs exhaustive breadth-first enumeration of the
reachable configuration space with canonical state hashing (``canon``),
which is the engine behind every verification result in this repository.
``reduce`` is the reduction-policy registry
(:class:`~repro.semantics.reduce.ReductionStrategy`) and the sound
ε-closure + covering-read-prune layer behind ``reduction="closure"``;
``dpor`` builds the sleep-set + persistent-set partial-order reduction
(``reduction="dpor"``) on top of it.  ``random_exec`` provides a
statistical sampling mode for programs too large to enumerate.
"""

from repro.semantics.canon import canonical_key
from repro.semantics.config import Config, initial_config
from repro.semantics.explore import ExploreResult, explore, final_outcomes, reachable
from repro.semantics.random_exec import random_run
from repro.semantics.reduce import (
    REDUCTIONS,
    ReductionStrategy,
    close_config,
    get_strategy,
    reduced_successors,
)
from repro.semantics.step import (
    Transition,
    silent_step,
    successors,
    thread_successors,
)

__all__ = [
    "Config",
    "ExploreResult",
    "REDUCTIONS",
    "ReductionStrategy",
    "Transition",
    "canonical_key",
    "close_config",
    "explore",
    "final_outcomes",
    "get_strategy",
    "initial_config",
    "random_run",
    "reachable",
    "reduced_successors",
    "silent_step",
    "successors",
    "thread_successors",
]
