"""Random-walk execution (statistical checking mode).

For programs whose full state space is too large to enumerate, a random
scheduler samples executions: at each configuration one enabled
transition is chosen uniformly.  Sampling cannot prove absence of
behaviours, but it reproduces *allowed* weak behaviours quickly and
scales to workloads the exhaustive explorer cannot touch — the framework
analogue of running a litmus test many times on hardware.

Every run records the schedule it took — the ``(tid, component,
action)`` sequence plus the exact successor indices chosen — so any
sampled behaviour (a deadlock in particular) is *replayable*:
:func:`replay_run` re-executes a recorded choice sequence
deterministically, and :func:`sample_outcomes` attaches the seed, run
number and schedule to the error it raises on deadlock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.lang.program import Program
from repro.memory.actions import Action
from repro.semantics.config import Config, initial_config
from repro.semantics.step import successors
from repro.util.errors import VerificationError

#: One scheduled step of a recorded run: ``(tid, component, action)``.
ScheduleStep = Tuple[str, str, Optional[Action]]


@dataclass
class RunResult:
    """Outcome of one random (or replayed) execution."""

    final: Config
    steps: int
    terminated: bool
    deadlocked: bool
    #: The ``(tid, component, action)`` sequence the run executed —
    #: human-readable, the same shape as witness steps.
    schedule: Tuple[ScheduleStep, ...] = ()
    #: The successor index chosen at each configuration.  Unlike the
    #: schedule (whose action labels are ambiguous under placement
    #: nondeterminism), the index sequence replays the run *exactly*:
    #: ``replay_run(program, result.choices)`` reaches ``final``.
    choices: Tuple[int, ...] = field(default=(), repr=False)


def _run(program: Program, pick, max_steps: int) -> RunResult:
    """Drive one execution, choosing each step via ``pick(succs, i)``
    (returning None stops the run — the replay's exhausted record)."""
    cfg = initial_config(program)
    schedule = []
    choices = []
    steps = 0
    while steps < max_steps:
        succs = successors(program, cfg)
        if not succs:
            return RunResult(
                final=cfg,
                steps=steps,
                terminated=cfg.is_terminal(),
                deadlocked=not cfg.is_terminal(),
                schedule=tuple(schedule),
                choices=tuple(choices),
            )
        choice = pick(succs, steps)
        if choice is None:
            break
        tr = succs[choice]
        schedule.append((tr.tid, tr.component, tr.action))
        choices.append(choice)
        cfg = tr.target
        steps += 1
    return RunResult(
        final=cfg,
        steps=steps,
        terminated=False,
        deadlocked=False,
        schedule=tuple(schedule),
        choices=tuple(choices),
    )


def random_run(
    program: Program,
    rng: Optional[random.Random] = None,
    max_steps: int = 100_000,
) -> RunResult:
    """Execute one random schedule to termination (or the step cap).

    The result exposes the ``schedule`` taken and the exact ``choices``
    sequence, replayable via :func:`replay_run`.
    """
    rng = rng or random.Random()
    return _run(
        program, lambda succs, _i: rng.randrange(len(succs)), max_steps
    )


def replay_run(program: Program, choices: Sequence[int]) -> RunResult:
    """Deterministically re-execute a recorded choice sequence.

    ``choices`` is the per-step successor index (``RunResult.choices``
    or the ``details["choices"]`` of a deadlock error); the replay stops
    early if the run ends before the sequence is exhausted.  Raises
    :class:`VerificationError` if an index is out of range — the record
    does not belong to this program.
    """
    choices = list(choices)

    def pick(succs, i: int) -> Optional[int]:
        if i >= len(choices):
            return None  # record exhausted: stop here
        if choices[i] >= len(succs):
            raise VerificationError(
                f"replay step {i + 1} chooses successor {choices[i]} but "
                f"only {len(succs)} are enabled — schedule does not "
                "belong to this program"
            )
        return choices[i]

    return _run(program, pick, max_steps=len(choices) + 1)


def sample_outcomes(
    program: Program,
    regs: Tuple[Tuple[str, str], ...],
    runs: int = 200,
    seed: int = 0,
    max_steps: int = 100_000,
) -> dict:
    """Histogram of terminal register valuations over ``runs`` samples.

    Non-terminating samples (step cap hit) are recorded under the key
    ``'<incomplete>'``; deadlocks raise, as no program in this repository
    should deadlock under a fair-enough random scheduler.  The deadlock
    error is replayable: ``err.details`` carries the seed, the run
    number, the human-readable schedule and the exact ``choices``
    sequence (feed it to :func:`replay_run` to re-reach the deadlocked
    configuration).
    """
    rng = random.Random(seed)
    histogram: dict = {}
    for run_index in range(runs):
        result = random_run(program, rng=rng, max_steps=max_steps)
        if result.deadlocked:
            raise VerificationError(
                f"random run deadlocked (seed={seed}, run {run_index}, "
                f"{result.steps} steps; replay via "
                "replay_run(program, err.details['choices']))",
                counterexample=result.final,
                details={
                    "seed": seed,
                    "run": run_index,
                    "schedule": result.schedule,
                    "choices": result.choices,
                },
            )
        if not result.terminated:
            key: object = "<incomplete>"
        else:
            key = tuple(result.final.local(t, r) for t, r in regs)
        histogram[key] = histogram.get(key, 0) + 1
    return histogram
