"""Random-walk execution (statistical checking mode).

For programs whose full state space is too large to enumerate, a random
scheduler samples executions: at each configuration one enabled
transition is chosen uniformly.  Sampling cannot prove absence of
behaviours, but it reproduces *allowed* weak behaviours quickly and
scales to workloads the exhaustive explorer cannot touch — the framework
analogue of running a litmus test many times on hardware.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.lang.program import Program
from repro.semantics.config import Config, initial_config
from repro.semantics.step import Transition, successors
from repro.util.errors import VerificationError


@dataclass
class RunResult:
    """Outcome of one random execution."""

    final: Config
    steps: int
    terminated: bool
    deadlocked: bool


def random_run(
    program: Program,
    rng: Optional[random.Random] = None,
    max_steps: int = 100_000,
) -> RunResult:
    """Execute one random schedule to termination (or the step cap)."""
    rng = rng or random.Random()
    cfg = initial_config(program)
    for i in range(max_steps):
        succs = successors(program, cfg)
        if not succs:
            return RunResult(
                final=cfg,
                steps=i,
                terminated=cfg.is_terminal(),
                deadlocked=not cfg.is_terminal(),
            )
        cfg = rng.choice(succs).target
    return RunResult(final=cfg, steps=max_steps, terminated=False, deadlocked=False)


def sample_outcomes(
    program: Program,
    regs: Tuple[Tuple[str, str], ...],
    runs: int = 200,
    seed: int = 0,
    max_steps: int = 100_000,
) -> dict:
    """Histogram of terminal register valuations over ``runs`` samples.

    Non-terminating samples (step cap hit) are recorded under the key
    ``'<incomplete>'``; deadlocks raise, as no program in this repository
    should deadlock under a fair-enough random scheduler.
    """
    rng = random.Random(seed)
    histogram: dict = {}
    for _ in range(runs):
        result = random_run(program, rng=rng, max_steps=max_steps)
        if result.deadlocked:
            raise VerificationError(
                "random run deadlocked", counterexample=result.final
            )
        if not result.terminated:
            key: object = "<incomplete>"
        else:
            key = tuple(result.final.local(t, r) for t, r in regs)
        histogram[key] = histogram.get(key, 0) + 1
    return histogram
