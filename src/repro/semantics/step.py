"""Successor generation: the ``=⇒`` relation of Section 3.2.

For each thread we enumerate every transition its continuation admits:
silent (ε) program steps, memory steps constrained by Figure 5 (with all
read-from and placement nondeterminism), and abstract method transitions
(Section 4).  Steps arising inside a :class:`~repro.lang.ast.LibBlock` or
from a :class:`~repro.lang.ast.MethodCall` are *library* steps: they
execute against ``β`` with ``γ`` as context, and are tagged ``'L'``.

Silent steps are factored into :func:`silent_step`, the single source of
truth shared with the reduction layer (:mod:`repro.semantics.reduce`):
a command's step set is *homogeneous* — either its head admits exactly
one silent step (``LocalAssign``/``If``/``While`` bookkeeping, possibly
under ``Seq``/``Labeled``/``LibBlock`` wrappers) or every step it admits
is a visible memory/method step.  ``_steps`` therefore consults
``silent_step`` first and only enumerates the visible rules when it
returns nothing, so the ε-fragment cannot drift between ordinary and
ε-closed successor generation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.lang import ast as A
from repro.lang.expr import eval_expr
from repro.lang.program import Program
from repro.memory.actions import Action
from repro.memory.state import ComponentState
from repro.memory.transitions import read_steps, update_steps, write_steps
from repro.semantics.config import Config
from repro.util.errors import SemanticsError
from repro.util.fmap import FMap


class Transition:
    """One step of the combined semantics.

    A slotted value class (matching the :class:`~repro.memory.actions.Op`
    treatment): transitions are created once per edge on the explorer's
    hottest allocation path and never mutated.
    """

    __slots__ = ("tid", "component", "action", "target")

    def __init__(
        self,
        tid: str,
        component: str,  # 'C' for client steps, 'L' for library steps
        action: Optional[Action],  # None for silent (ε) steps
        target: Config,
    ) -> None:
        self.tid = tid
        self.component = component
        self.action = action
        self.target = target

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Transition):
            return (
                self.tid == other.tid
                and self.component == other.component
                and self.action == other.action
                and self.target == other.target
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.tid, self.component, self.action, self.target))

    def __repr__(self) -> str:
        return (
            f"Transition(tid={self.tid!r}, component={self.component!r}, "
            f"action={self.action!r}, target={self.target!r})"
        )


#: Internal: (action, component, cmd', ls', γ', β').
_ThreadStep = Tuple[
    Optional[Action], str, A.Com, FMap, ComponentState, ComponentState
]

#: Continuation summary for the covering-read prune: the set of global
#: variables the continuation may still access, and whether it may still
#: *publish* thread views (write/update/method/lib steps record the
#: stepping thread's whole view map in new operations' modification
#: views, so any of them can export an otherwise-dead viewfront entry).
_Rest = Tuple[FrozenSet, bool]

_REST_EMPTY: _Rest = (frozenset(), False)


def successors(
    program: Program,
    cfg: Config,
    prune: bool = False,
    close=None,
) -> List[Transition]:
    """All ``=⇒`` successors of ``cfg`` across every thread.

    One shared output list, appended to directly per thread — no
    per-thread generator materialisation and second ``extend`` pass.
    ``prune=True`` enables the covering-read prune (sound only as part
    of the reduction layer; see :mod:`repro.semantics.reduce`).

    ``close``, when given, is the reduction layer's ε-closure
    ``(cmd, ls) -> (cmd', ls', fused)`` applied to each successor's
    stepping thread *before* the transition is constructed: silent
    chains touch only the continuation and locals by construction, so
    fusing them here builds each macro-step target exactly once instead
    of materialising a throwaway intermediate Transition/Config pair
    per closed successor.
    """
    out: List[Transition] = []
    append = out.append
    rest = _REST_EMPTY if prune else None
    for tid in program.tids:
        cmd = cfg.cmds[tid]
        if cmd is None:
            continue
        ls = cfg.locals[tid]
        for action, comp, cmd2, ls2, gamma2, beta2 in _steps(
            program, cmd, tid, ls, cfg.gamma, cfg.beta, in_lib=False,
            rest=rest,
        ):
            if close is not None and cmd2 is not None:
                cmd2, ls2, _fused = close(cmd2, ls2)
            append(
                Transition(
                    tid, comp, action,
                    cfg.with_thread(tid, cmd2, ls2, gamma2, beta2),
                )
            )
    return out


def thread_successors(
    program: Program, cfg: Config, tid: str
) -> Iterator[Transition]:
    """Successors contributed by thread ``tid`` (always unpruned — the
    covering-read prune is only sound composed with the ε-closure, so
    it is reachable solely through ``successors(prune=True)`` inside
    the reduction layer)."""
    cmd = cfg.cmds[tid]
    if cmd is None:
        return
    ls = cfg.locals[tid]
    for action, comp, cmd2, ls2, gamma2, beta2 in _steps(
        program, cmd, tid, ls, cfg.gamma, cfg.beta, in_lib=False,
        rest=None,
    ):
        yield Transition(
            tid=tid,
            component=comp,
            action=action,
            target=cfg.with_thread(tid, cmd2, ls2, gamma2, beta2),
        )


def silent_step(
    cmd: A.Node, ls: FMap, in_lib: bool = False
) -> Optional[Tuple[str, Optional[A.Node], FMap]]:
    """The unique silent (ε) step of ``cmd``, or None if its head is a
    memory/method command.

    Returns ``(component, cmd', ls')``.  Silent steps touch only the
    stepping thread's continuation and local state — never ``γ`` or
    ``β`` — and are deterministic: ``LocalAssign``, ``If`` and ``While``
    each admit exactly one step, a function of ``ls`` alone, and the
    ``Seq``/``Labeled``/``LibBlock`` wrappers preserve uniqueness.
    """
    if isinstance(cmd, A.LocalAssign):
        comp = "L" if in_lib else "C"
        return comp, None, ls.set(cmd.reg, eval_expr(cmd.expr, ls))

    if isinstance(cmd, A.If):
        comp = "L" if in_lib else "C"
        branch = (
            cmd.then_branch if eval_expr(cmd.cond, ls) else cmd.else_branch
        )
        return comp, branch, ls

    if isinstance(cmd, A.While):
        comp = "L" if in_lib else "C"
        if eval_expr(cmd.cond, ls):
            return comp, A.Seq(cmd.body, cmd), ls
        return comp, None, ls

    if isinstance(cmd, A.Seq):
        inner = silent_step(cmd.first, ls, in_lib)
        if inner is None:
            return None
        comp, first2, ls2 = inner
        return comp, A.seq_cons(first2, cmd.second), ls2

    if isinstance(cmd, A.Labeled):
        inner = silent_step(cmd.body, ls, in_lib)
        if inner is None:
            return None
        comp, body2, ls2 = inner
        wrapped = A.Labeled(cmd.label, body2) if body2 is not None else None
        return comp, wrapped, ls2

    if isinstance(cmd, A.LibBlock):
        inner = silent_step(cmd.body, ls, in_lib=True)
        if inner is None:
            return None
        _comp, body2, ls2 = inner
        wrapped = (
            A.LibBlock(body2, cmd.public_regs) if body2 is not None else None
        )
        return "L", wrapped, ls2

    return None


#: Memoised continuation summaries.  AST nodes are immutable and loop
#: unfoldings rebuild structurally-equal suffixes, so value-keyed
#: memoisation hits across the whole exploration.  Bounded by a crude
#: flush (matching the fingerprint sub-digest cache) so long-lived
#: processes exploring many distinct programs don't retain every dead
#: program's AST.
_SUMMARIES: Dict[A.Node, _Rest] = {}
_SUMMARIES_MAX = 100_000


def _node_summary(cmd: Optional[A.Node]) -> _Rest:
    """``(vars possibly accessed, may publish views)`` of a command.

    Conservative over all executions: branches union, loops summarise
    their bodies.  ``MethodCall`` (and any unknown node) counts as
    publishing — abstract methods execute against ``β`` with arbitrary
    variable footprints.
    """
    if cmd is None:
        return _REST_EMPTY
    cached = _SUMMARIES.get(cmd)
    if cached is not None:
        return cached
    if isinstance(cmd, A.LocalAssign):
        summary: _Rest = _REST_EMPTY
    elif isinstance(cmd, A.Read):
        summary = (frozenset((cmd.var,)), False)
    elif isinstance(cmd, (A.Write, A.Cas, A.Fai)):
        summary = (frozenset((cmd.var,)), True)
    elif isinstance(cmd, A.Seq):
        summary = _combine(_node_summary(cmd.first), _node_summary(cmd.second))
    elif isinstance(cmd, A.If):
        summary = _combine(
            _node_summary(cmd.then_branch), _node_summary(cmd.else_branch)
        )
    elif isinstance(cmd, A.While):
        summary = _node_summary(cmd.body)
    elif isinstance(cmd, (A.Labeled, A.LibBlock)):
        summary = _node_summary(cmd.body)
    else:  # MethodCall and anything unforeseen: assume everything.
        summary = (frozenset(), True)
    if len(_SUMMARIES) >= _SUMMARIES_MAX:
        _SUMMARIES.clear()
    _SUMMARIES[cmd] = summary
    return summary


def _combine(a: _Rest, b: _Rest) -> _Rest:
    if b is _REST_EMPTY:
        return a
    if a is _REST_EMPTY:
        return b
    return a[0] | b[0], a[1] or b[1]


def _collapse_ok(var: str, rest: Optional[_Rest]) -> bool:
    """Whether the covering-read prune applies to a read of ``var``.

    True when the thread's continuation can neither access ``var`` again
    (so the advanced viewfront is never consulted) nor publish its view
    map (so the front cannot escape into another operation's
    modification view).  Under that condition the only successor
    difference between same-value, non-synchronising read choices is an
    unobservable viewfront entry — the states are covering-equivalent.
    """
    if rest is None:
        return False
    vars_, publishes = rest
    return not publishes and var not in vars_


def _steps(
    program: Program,
    cmd: A.Node,
    tid: str,
    ls: FMap,
    gamma: ComponentState,
    beta: ComponentState,
    in_lib: bool,
    rest: Optional[_Rest] = None,
) -> Iterator[_ThreadStep]:
    """All steps of ``cmd``.

    ``rest`` is the covering-read prune context: None disables the
    prune (the default, byte-identical to the historical semantics); a
    summary tuple carries what the *rest of the thread* beyond ``cmd``
    may still do, maintained through ``Seq`` descent.
    """
    silent = silent_step(cmd, ls, in_lib)
    if silent is not None:
        comp2, cmd2, ls2 = silent
        yield None, comp2, cmd2, ls2, gamma, beta
        return

    comp = "L" if in_lib else "C"

    if isinstance(cmd, A.Write):
        value = eval_expr(cmd.expr, ls)
        exec_state, ctx_state = (beta, gamma) if in_lib else (gamma, beta)
        for action, _w, exec2, ctx2 in write_steps(
            exec_state, ctx_state, tid, cmd.var, value, cmd.release
        ):
            g2, b2 = (ctx2, exec2) if in_lib else (exec2, ctx2)
            yield action, comp, None, ls, g2, b2

    elif isinstance(cmd, A.Read):
        exec_state, ctx_state = (beta, gamma) if in_lib else (gamma, beta)
        for action, _w, exec2, ctx2 in read_steps(
            exec_state, ctx_state, tid, cmd.var, cmd.acquire,
            collapse_same_value=_collapse_ok(cmd.var, rest),
        ):
            g2, b2 = (ctx2, exec2) if in_lib else (exec2, ctx2)
            yield action, comp, None, ls.set(cmd.reg, action.val), g2, b2

    elif isinstance(cmd, A.Cas):
        expect = eval_expr(cmd.expect, ls)
        new = eval_expr(cmd.new, ls)
        exec_state, ctx_state = (beta, gamma) if in_lib else (gamma, beta)
        # Success: an acquiring-releasing update updRA(x, u, v).
        for action, _w, exec2, ctx2 in update_steps(
            exec_state, ctx_state, tid, cmd.var, expect, lambda _m: new
        ):
            g2, b2 = (ctx2, exec2) if in_lib else (exec2, ctx2)
            yield action, comp, None, ls.set(cmd.reg, True), g2, b2
        # Failure: a relaxed read of any observable value ≠ u.
        for action, _w, exec2, ctx2 in read_steps(
            exec_state, ctx_state, tid, cmd.var, acquire=False, forbid=expect,
            collapse_same_value=_collapse_ok(cmd.var, rest),
        ):
            g2, b2 = (ctx2, exec2) if in_lib else (exec2, ctx2)
            yield action, comp, None, ls.set(cmd.reg, False), g2, b2

    elif isinstance(cmd, A.Fai):
        exec_state, ctx_state = (beta, gamma) if in_lib else (gamma, beta)
        for action, _w, exec2, ctx2 in update_steps(
            exec_state, ctx_state, tid, cmd.var, None, _increment
        ):
            g2, b2 = (ctx2, exec2) if in_lib else (exec2, ctx2)
            yield action, comp, None, ls.set(cmd.reg, action.rdval), g2, b2

    elif isinstance(cmd, A.MethodCall):
        # Abstract method calls are library transitions: the object's home
        # component β executes, the client γ is the context (Figure 6).
        obj = program.object_map.get(cmd.obj)
        if obj is None:
            raise SemanticsError(f"no abstract object named {cmd.obj!r}")
        arg = None if cmd.arg is None else eval_expr(cmd.arg, ls)
        for step in obj.method_steps(beta, gamma, tid, cmd.method, arg):
            ls2 = ls.set(cmd.dest, step.retval) if cmd.dest else ls
            yield step.action, "L", None, ls2, step.cli, step.lib

    elif isinstance(cmd, A.Seq):
        rest2 = None if rest is None else _combine(
            _node_summary(cmd.second), rest
        )
        for action, comp2, first2, ls2, g2, b2 in _steps(
            program, cmd.first, tid, ls, gamma, beta, in_lib, rest=rest2
        ):
            yield action, comp2, A.seq_cons(first2, cmd.second), ls2, g2, b2

    elif isinstance(cmd, A.LibBlock):
        for action, _comp2, body2, ls2, g2, b2 in _steps(
            program, cmd.body, tid, ls, gamma, beta, in_lib=True, rest=rest
        ):
            wrapped = (
                A.LibBlock(body2, cmd.public_regs) if body2 is not None else None
            )
            yield action, "L", wrapped, ls2, g2, b2

    elif isinstance(cmd, A.Labeled):
        for action, comp2, body2, ls2, g2, b2 in _steps(
            program, cmd.body, tid, ls, gamma, beta, in_lib, rest=rest
        ):
            wrapped = A.Labeled(cmd.label, body2) if body2 is not None else None
            yield action, comp2, wrapped, ls2, g2, b2

    else:
        raise SemanticsError(f"cannot step command: {cmd!r}")


def _increment(m):
    if not isinstance(m, int):
        raise SemanticsError(f"FAI on non-integer value {m!r}")
    return m + 1
