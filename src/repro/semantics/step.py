"""Successor generation: the ``=⇒`` relation of Section 3.2.

For each thread we enumerate every transition its continuation admits:
silent (ǫ) program steps, memory steps constrained by Figure 5 (with all
read-from and placement nondeterminism), and abstract method transitions
(Section 4).  Steps arising inside a :class:`~repro.lang.ast.LibBlock` or
from a :class:`~repro.lang.ast.MethodCall` are *library* steps: they
execute against ``β`` with ``γ`` as context, and are tagged ``'L'``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.lang import ast as A
from repro.lang.expr import eval_expr
from repro.lang.program import Program
from repro.memory.actions import Action
from repro.memory.state import ComponentState
from repro.memory.transitions import read_steps, update_steps, write_steps
from repro.semantics.config import Config
from repro.util.errors import SemanticsError
from repro.util.fmap import FMap


@dataclass(frozen=True)
class Transition:
    """One step of the combined semantics."""

    tid: str
    component: str  # 'C' for client steps, 'L' for library steps
    action: Optional[Action]  # None for silent (ǫ) steps
    target: Config


#: Internal: (action, component, cmd', ls', γ', β').
_ThreadStep = Tuple[
    Optional[Action], str, A.Com, FMap, ComponentState, ComponentState
]


def successors(program: Program, cfg: Config) -> List[Transition]:
    """All ``=⇒`` successors of ``cfg`` across every thread."""
    out: List[Transition] = []
    for tid in program.tids:
        out.extend(thread_successors(program, cfg, tid))
    return out


def thread_successors(
    program: Program, cfg: Config, tid: str
) -> Iterator[Transition]:
    """Successors contributed by thread ``tid``."""
    cmd = cfg.cmds[tid]
    if cmd is None:
        return
    ls = cfg.locals[tid]
    for action, comp, cmd2, ls2, gamma2, beta2 in _steps(
        program, cmd, tid, ls, cfg.gamma, cfg.beta, in_lib=False
    ):
        yield Transition(
            tid=tid,
            component=comp,
            action=action,
            target=cfg.with_thread(tid, cmd2, ls2, gamma2, beta2),
        )


def _steps(
    program: Program,
    cmd: A.Node,
    tid: str,
    ls: FMap,
    gamma: ComponentState,
    beta: ComponentState,
    in_lib: bool,
) -> Iterator[_ThreadStep]:
    comp = "L" if in_lib else "C"

    if isinstance(cmd, A.LocalAssign):
        value = eval_expr(cmd.expr, ls)
        yield None, comp, None, ls.set(cmd.reg, value), gamma, beta

    elif isinstance(cmd, A.Write):
        value = eval_expr(cmd.expr, ls)
        exec_state, ctx_state = (beta, gamma) if in_lib else (gamma, beta)
        for action, _w, exec2, ctx2 in write_steps(
            exec_state, ctx_state, tid, cmd.var, value, cmd.release
        ):
            g2, b2 = (ctx2, exec2) if in_lib else (exec2, ctx2)
            yield action, comp, None, ls, g2, b2

    elif isinstance(cmd, A.Read):
        exec_state, ctx_state = (beta, gamma) if in_lib else (gamma, beta)
        for action, _w, exec2, ctx2 in read_steps(
            exec_state, ctx_state, tid, cmd.var, cmd.acquire
        ):
            g2, b2 = (ctx2, exec2) if in_lib else (exec2, ctx2)
            yield action, comp, None, ls.set(cmd.reg, action.val), g2, b2

    elif isinstance(cmd, A.Cas):
        expect = eval_expr(cmd.expect, ls)
        new = eval_expr(cmd.new, ls)
        exec_state, ctx_state = (beta, gamma) if in_lib else (gamma, beta)
        # Success: an acquiring-releasing update updRA(x, u, v).
        for action, _w, exec2, ctx2 in update_steps(
            exec_state, ctx_state, tid, cmd.var, expect, lambda _m: new
        ):
            g2, b2 = (ctx2, exec2) if in_lib else (exec2, ctx2)
            yield action, comp, None, ls.set(cmd.reg, True), g2, b2
        # Failure: a relaxed read of any observable value ≠ u.
        for action, _w, exec2, ctx2 in read_steps(
            exec_state, ctx_state, tid, cmd.var, acquire=False, forbid=expect
        ):
            g2, b2 = (ctx2, exec2) if in_lib else (exec2, ctx2)
            yield action, comp, None, ls.set(cmd.reg, False), g2, b2

    elif isinstance(cmd, A.Fai):
        exec_state, ctx_state = (beta, gamma) if in_lib else (gamma, beta)
        for action, _w, exec2, ctx2 in update_steps(
            exec_state, ctx_state, tid, cmd.var, None, _increment
        ):
            g2, b2 = (ctx2, exec2) if in_lib else (exec2, ctx2)
            yield action, comp, None, ls.set(cmd.reg, action.rdval), g2, b2

    elif isinstance(cmd, A.MethodCall):
        # Abstract method calls are library transitions: the object's home
        # component β executes, the client γ is the context (Figure 6).
        obj = program.object_map.get(cmd.obj)
        if obj is None:
            raise SemanticsError(f"no abstract object named {cmd.obj!r}")
        arg = None if cmd.arg is None else eval_expr(cmd.arg, ls)
        for step in obj.method_steps(beta, gamma, tid, cmd.method, arg):
            ls2 = ls.set(cmd.dest, step.retval) if cmd.dest else ls
            yield step.action, "L", None, ls2, step.cli, step.lib

    elif isinstance(cmd, A.Seq):
        for action, comp2, first2, ls2, g2, b2 in _steps(
            program, cmd.first, tid, ls, gamma, beta, in_lib
        ):
            yield action, comp2, A.seq_cons(first2, cmd.second), ls2, g2, b2

    elif isinstance(cmd, A.If):
        branch = (
            cmd.then_branch if eval_expr(cmd.cond, ls) else cmd.else_branch
        )
        yield None, comp, branch, ls, gamma, beta

    elif isinstance(cmd, A.While):
        if eval_expr(cmd.cond, ls):
            yield None, comp, A.Seq(cmd.body, cmd), ls, gamma, beta
        else:
            yield None, comp, None, ls, gamma, beta

    elif isinstance(cmd, A.LibBlock):
        for action, _comp2, body2, ls2, g2, b2 in _steps(
            program, cmd.body, tid, ls, gamma, beta, in_lib=True
        ):
            wrapped = (
                A.LibBlock(body2, cmd.public_regs) if body2 is not None else None
            )
            yield action, "L", wrapped, ls2, g2, b2

    elif isinstance(cmd, A.Labeled):
        for action, comp2, body2, ls2, g2, b2 in _steps(
            program, cmd.body, tid, ls, gamma, beta, in_lib
        ):
            wrapped = A.Labeled(cmd.label, body2) if body2 is not None else None
            yield action, comp2, wrapped, ls2, g2, b2

    else:
        raise SemanticsError(f"cannot step command: {cmd!r}")


def _increment(m):
    if not isinstance(m, int):
        raise SemanticsError(f"FAI on non-integer value {m!r}")
    return m + 1
