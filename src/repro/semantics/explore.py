"""Exhaustive state-space exploration.

Breadth-first enumeration of the reachable configuration space under the
combined semantics, memoised by canonical key.  This is the verification
engine: postconditions are checked on terminal configurations, safety
properties on every reachable configuration, and the refinement and
Owicki–Gries checkers both consume the graphs produced here.

Following the optimisation guide's workflow (make it work, make it
reliable, then profile), the loop is a plain deque-driven BFS; the two
measured hot spots — successor generation and canonical encoding — are
kept allocation-lean rather than micro-optimised further.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lang.program import Program
from repro.semantics.canon import canonical_key
from repro.semantics.config import Config, initial_config
from repro.semantics.step import Transition, successors
from repro.util.errors import VerificationError


@dataclass
class ExploreResult:
    """Everything the explorer learned about a program."""

    program: Program
    initial: Config
    initial_key: Tuple
    configs: Dict[Tuple, Config]
    terminals: List[Config]
    stuck: List[Config]
    edge_count: int
    truncated: bool
    elapsed: float
    edges: Optional[Dict[Tuple, List[Tuple[str, str, object, Tuple]]]] = None

    @property
    def state_count(self) -> int:
        return len(self.configs)

    def terminal_locals(self, *regs: Tuple[str, str]) -> set:
        """Distinct terminal register valuations.

        ``regs`` is a sequence of ``(tid, reg)`` pairs; the result is the
        set of value tuples those registers take in terminal states.
        """
        out = set()
        for cfg in self.terminals:
            out.add(tuple(cfg.local(t, r) for t, r in regs))
        return out


def explore(
    program: Program,
    max_states: int = 500_000,
    collect_edges: bool = False,
    canonicalise: bool = True,
    check_invariants: bool = False,
    on_config: Optional[Callable[[Config], None]] = None,
) -> ExploreResult:
    """Enumerate every reachable configuration of ``program``.

    Parameters
    ----------
    max_states:
        Safety cap; exceeding it marks the result ``truncated``.
    collect_edges:
        Record the labelled transition graph (needed by the refinement
        and Owicki–Gries checkers).
    canonicalise:
        Identify configurations up to timestamp relabelling.  Disabling
        this exists for the ablation benchmark — raw configurations with
        distinct rationals are then distinct states.
    check_invariants:
        Assert component-state coherence at every configuration
        (diagnostic mode used by the test-suite).
    """
    start = time.perf_counter()
    init = initial_config(program)
    keyf: Callable[[Config], Tuple]
    if canonicalise:
        keyf = lambda cfg: canonical_key(program, cfg)  # noqa: E731
    else:
        keyf = lambda cfg: _raw_key(cfg)  # noqa: E731

    init_key = keyf(init)
    configs: Dict[Tuple, Config] = {init_key: init}
    edges: Optional[Dict[Tuple, List]] = {} if collect_edges else None
    terminals: List[Config] = []
    stuck: List[Config] = []
    edge_count = 0
    truncated = False

    queue = deque([(init_key, init)])
    while queue:
        key, cfg = queue.popleft()
        if check_invariants:
            cfg.gamma.check_invariants(program.tids)
            cfg.beta.check_invariants(program.tids)
        if on_config is not None:
            on_config(cfg)
        succs = successors(program, cfg)
        if collect_edges:
            edges[key] = []
        if not succs:
            if cfg.is_terminal():
                terminals.append(cfg)
            else:
                stuck.append(cfg)
            continue
        for tr in succs:
            edge_count += 1
            tkey = keyf(tr.target)
            if collect_edges:
                edges[key].append((tr.tid, tr.component, tr.action, tkey))
            if tkey not in configs:
                if len(configs) >= max_states:
                    truncated = True
                    continue
                configs[tkey] = tr.target
                queue.append((tkey, tr.target))

    return ExploreResult(
        program=program,
        initial=init,
        initial_key=init_key,
        configs=configs,
        terminals=terminals,
        stuck=stuck,
        edge_count=edge_count,
        truncated=truncated,
        elapsed=time.perf_counter() - start,
        edges=edges,
    )


def _raw_key(cfg: Config) -> Tuple:
    """Structural identity without timestamp normalisation (ablation)."""
    return (
        tuple(sorted(cfg.cmds.items(), key=lambda kv: kv[0])),
        tuple(sorted((t, ls.items_sorted()) for t, ls in cfg.locals.items())),
        _raw_state(cfg.gamma),
        _raw_state(cfg.beta),
    )


def _raw_state(state) -> Tuple:
    return (
        state.ops,
        tuple(sorted(state.tview.items(), key=lambda kv: repr(kv[0]))),
        tuple(sorted(state.mview.items(), key=lambda kv: repr(kv[0]))),
        state.cvd,
    )


def reachable(
    program: Program,
    predicate: Callable[[Config], bool],
    max_states: int = 500_000,
) -> Optional[Config]:
    """Return a reachable configuration satisfying ``predicate`` or None."""
    witness: List[Config] = []

    def probe(cfg: Config) -> None:
        if not witness and predicate(cfg):
            witness.append(cfg)

    explore(program, max_states=max_states, on_config=probe)
    return witness[0] if witness else None


def assert_invariant(
    program: Program,
    invariant: Callable[[Config], bool],
    max_states: int = 500_000,
) -> ExploreResult:
    """Check a safety property on every reachable configuration.

    Raises :class:`VerificationError` with the offending configuration.
    """
    def probe(cfg: Config) -> None:
        if not invariant(cfg):
            raise VerificationError(
                "invariant violated", counterexample=cfg
            )

    return explore(program, max_states=max_states, on_config=probe)


def final_outcomes(
    program: Program,
    regs: Tuple[Tuple[str, str], ...],
    max_states: int = 500_000,
) -> set:
    """The set of terminal valuations of ``regs`` ((tid, reg) pairs)."""
    result = explore(program, max_states=max_states)
    if result.truncated:
        raise VerificationError("state space truncated; raise max_states")
    if result.stuck:
        raise VerificationError(
            "deadlocked configurations found", counterexample=result.stuck[0]
        )
    return result.terminal_locals(*regs)
