"""Exhaustive state-space exploration (compatibility wrappers).

Breadth-first enumeration of the reachable configuration space under the
combined semantics, memoised by canonical key.  The loop itself now
lives in the exploration engine (:mod:`repro.engine`): this module keeps
the historical call surface — :func:`explore`, :func:`reachable`,
:func:`assert_invariant`, :func:`final_outcomes` and
:class:`ExploreResult` — as thin wrappers over the engine's sequential
BFS backend, so existing call sites and tests are untouched while new
code can pick strategies, worker processes and the persistent result
cache through :class:`repro.engine.ExplorationEngine`.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

# Re-exported for backwards compatibility: ExploreResult historically
# lived here, and the ablation benchmarks reach for _raw_key.
from repro.engine.core import _raw_key, _raw_state, explore_sequential
from repro.engine.result import ExploreResult
from repro.lang.program import Program
from repro.semantics.config import Config
from repro.util.errors import VerificationError

__all__ = [
    "ExploreResult",
    "assert_invariant",
    "explore",
    "final_outcomes",
    "reachable",
]


def explore(
    program: Program,
    max_states: int = 500_000,
    collect_edges: bool = False,
    canonicalise: bool = True,
    check_invariants: bool = False,
    on_config: Optional[Callable[[Config], Optional[bool]]] = None,
) -> ExploreResult:
    """Enumerate every reachable configuration of ``program``.

    Parameters
    ----------
    max_states:
        Safety cap; exceeding it marks the result ``truncated`` and the
        loop bails out promptly, so ``edge_count``, ``terminals`` and
        ``stuck`` are *lower bounds* on a truncated result.
    collect_edges:
        Record the labelled transition graph (needed by the refinement
        and Owicki–Gries checkers).
    canonicalise:
        Identify configurations up to timestamp relabelling.  Disabling
        this exists for the ablation benchmark — raw configurations with
        distinct rationals are then distinct states.
    check_invariants:
        Assert component-state coherence at every configuration
        (diagnostic mode used by the test-suite).
    on_config:
        Callback invoked on every configuration as it is expanded.
        Returning a truthy value halts exploration immediately (the
        result is then marked ``stopped``) — used by :func:`reachable`
        to stop at the first witness.
    """
    return explore_sequential(
        program,
        max_states=max_states,
        collect_edges=collect_edges,
        canonicalise=canonicalise,
        check_invariants=check_invariants,
        on_config=on_config,
    )


def reachable(
    program: Program,
    predicate: Callable[[Config], bool],
    max_states: int = 500_000,
) -> Optional[Config]:
    """Return a reachable configuration satisfying ``predicate`` or None.

    Exploration halts at the first witness (early-stop) rather than
    enumerating the rest of the state space.  ``None`` is a *proof* of
    unreachability: when the search exhausts ``max_states`` without a
    witness the answer is unknown, and pretending otherwise would let a
    truncated search masquerade as one — that case raises
    :class:`VerificationError` instead.
    """
    witness: list = []

    def probe(cfg: Config) -> bool:
        if predicate(cfg):
            witness.append(cfg)
            return True
        return False

    result = explore(program, max_states=max_states, on_config=probe)
    if witness:
        return witness[0]
    if result.truncated:
        raise VerificationError(
            f"no witness within the first {result.state_count} states and "
            "the search was truncated — unreachability not established; "
            "raise max_states"
        )
    return None


def assert_invariant(
    program: Program,
    invariant: Callable[[Config], bool],
    max_states: int = 500_000,
) -> ExploreResult:
    """Check a safety property on every reachable configuration.

    Raises :class:`VerificationError` with the offending configuration;
    the search stops at the first violation.  A truncated search that
    found no violation also raises — it checked only part of the space,
    so it proves nothing (silently returning would report a partial
    search as a successful verification).
    """
    violation: list = []

    def probe(cfg: Config) -> bool:
        if not invariant(cfg):
            violation.append(cfg)
            return True
        return False

    result = explore(program, max_states=max_states, on_config=probe)
    if violation:
        raise VerificationError(
            "invariant violated", counterexample=violation[0]
        )
    if result.truncated:
        raise VerificationError(
            f"invariant held on the first {result.state_count} states but "
            "the search was truncated — not a proof; raise max_states"
        )
    return result


def final_outcomes(
    program: Program,
    regs: Tuple[Tuple[str, str], ...],
    max_states: int = 500_000,
) -> set:
    """The set of terminal valuations of ``regs`` ((tid, reg) pairs)."""
    result = explore(program, max_states=max_states)
    if result.truncated:
        raise VerificationError("state space truncated; raise max_states")
    if result.stuck:
        raise VerificationError(
            "deadlocked configurations found", counterexample=result.stuck[0]
        )
    return result.terminal_locals(*regs)
