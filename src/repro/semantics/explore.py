"""Exhaustive state-space exploration (compatibility wrappers).

Breadth-first enumeration of the reachable configuration space under the
combined semantics, memoised by canonical key.  The loop itself now
lives in the exploration engine (:mod:`repro.engine`): this module keeps
the historical call surface — :func:`explore`, :func:`reachable`,
:func:`assert_invariant`, :func:`final_outcomes` and
:class:`ExploreResult` — as thin wrappers over the engine's sequential
BFS backend, so existing call sites and tests are untouched while new
code can pick strategies, worker processes and the persistent result
cache through :class:`repro.engine.ExplorationEngine`.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

# Re-exported for backwards compatibility: ExploreResult historically
# lived here, and the ablation benchmarks reach for _raw_key.
from repro.engine.core import _raw_key, _raw_state, explore_sequential
from repro.engine.result import ExploreResult
from repro.lang.program import Program
from repro.semantics.config import Config
from repro.util.errors import VerificationError

__all__ = [
    "ExploreResult",
    "assert_invariant",
    "explore",
    "final_outcomes",
    "reachable",
]


def explore(
    program: Program,
    max_states: int = 500_000,
    collect_edges: bool = False,
    canonicalise: bool = True,
    check_invariants: bool = False,
    on_config: Optional[Callable[[Config], Optional[bool]]] = None,
    reduction: str = "off",
    track_parents: bool = False,
) -> ExploreResult:
    """Enumerate every reachable configuration of ``program``.

    Parameters
    ----------
    max_states:
        Safety cap; exceeding it marks the result ``truncated`` and the
        loop bails out promptly, so ``edge_count``, ``terminals`` and
        ``stuck`` are *lower bounds* on a truncated result.
    collect_edges:
        Record the labelled transition graph (needed by the refinement
        and Owicki–Gries checkers).
    canonicalise:
        Identify configurations up to timestamp relabelling.  Disabling
        this exists for the ablation benchmark — raw configurations with
        distinct rationals are then distinct states.
    check_invariants:
        Assert component-state coherence at every configuration
        (diagnostic mode used by the test-suite).
    on_config:
        Callback invoked on every configuration as it is expanded.
        Returning a truthy value halts exploration immediately (the
        result is then marked ``stopped``) — used by :func:`reachable`
        to stop at the first witness.
    reduction:
        ``"off"`` (default) or ``"closure"`` — the ε-closure +
        covering-read reduction (:mod:`repro.semantics.reduce`).
        Closure preserves terminal outcomes, stuck-ness and
        register-level verdicts but fuses intermediate silent
        configurations away: they are not stored, counted, or passed to
        ``on_config``/``check_invariants``.
    track_parents:
        Record each state's first-discovery edge (parent key +
        ``(tid, component, action)`` label) in ``result.parents``, from
        which :func:`repro.semantics.witness.reconstruct_witness`
        rebuilds a shortest counterexample without re-exploring.
    """
    return explore_sequential(
        program,
        max_states=max_states,
        collect_edges=collect_edges,
        canonicalise=canonicalise,
        check_invariants=check_invariants,
        on_config=on_config,
        reduction=reduction,
        track_parents=track_parents,
    )


def reachable(
    program: Program,
    predicate: Callable[[Config], bool],
    max_states: int = 500_000,
    reduction: str = "off",
) -> Optional[Config]:
    """Return a reachable configuration satisfying ``predicate`` or None.

    Exploration halts at the first witness (early-stop) rather than
    enumerating the rest of the state space.  ``None`` is a *proof* of
    unreachability: when the search exhausts ``max_states`` without a
    witness the answer is unknown, and pretending otherwise would let a
    truncated search masquerade as one — that case raises
    :class:`VerificationError` instead (``find_path`` and
    ``ExplorationEngine.find_witness`` honour the same contract).  To
    additionally get the *execution* reaching the configuration, use
    :meth:`repro.engine.ExplorationEngine.find_witness`, which runs this
    same early-stopping search with predecessor tracking and
    reconstructs the schedule from the explored graph.

    ``reduction="closure"`` evaluates the predicate on ε-closed
    configurations only — a subset of the unreduced reachable set.  It
    is sound for predicates that are insensitive to a thread's position
    inside a silent chain (e.g. properties of terminal configurations,
    or of state at visible-step boundaries); predicates that must see
    intermediate silent configurations — a register value that is
    immediately overwritten, an untaken branch — need the default
    ``"off"``.
    """
    witness: list = []

    def probe(cfg: Config) -> bool:
        if predicate(cfg):
            witness.append(cfg)
            return True
        return False

    result = explore(
        program, max_states=max_states, on_config=probe, reduction=reduction
    )
    if witness:
        return witness[0]
    if result.truncated:
        raise VerificationError(
            f"no witness within the first {result.state_count} states and "
            "the search was truncated — unreachability not established; "
            "raise max_states"
        )
    return None


def assert_invariant(
    program: Program,
    invariant: Callable[[Config], bool],
    max_states: int = 500_000,
    reduction: str = "off",
    witness: bool = False,
) -> ExploreResult:
    """Check a safety property on every reachable configuration.

    Raises :class:`VerificationError` with the offending configuration;
    the search stops at the first violation.  A truncated search that
    found no violation also raises — it checked only part of the space,
    so it proves nothing (silently returning would report a partial
    search as a successful verification).

    Under ``reduction="closure"`` the invariant is checked on the
    ε-closed configurations only (see :func:`reachable` for when that
    is equivalent).

    ``witness=True`` makes the exploration track predecessors, so a
    violation's error additionally carries ``err.witness`` — the
    shortest concrete execution reaching the counterexample,
    reconstructed from the already-explored graph (no second search).
    """
    violation: list = []

    def probe(cfg: Config) -> bool:
        if not invariant(cfg):
            violation.append(cfg)
            return True
        return False

    result = explore(
        program,
        max_states=max_states,
        on_config=probe,
        reduction=reduction,
        track_parents=witness,
    )
    if violation:
        trace = None
        if witness:
            from repro.semantics.canon import canonical_key
            from repro.semantics.witness import reconstruct_witness

            def key_of(cfg: Config):
                return canonical_key(program, cfg)

            trace = reconstruct_witness(
                program,
                result.parents,
                key_of(violation[0]),
                key_of,
                reduction=reduction,
            )
        raise VerificationError(
            "invariant violated", counterexample=violation[0], witness=trace
        )
    if result.truncated:
        raise VerificationError(
            f"invariant held on the first {result.state_count} states but "
            "the search was truncated — not a proof; raise max_states"
        )
    return result


def final_outcomes(
    program: Program,
    regs: Tuple[Tuple[str, str], ...],
    max_states: int = 500_000,
    reduction: str = "off",
) -> set:
    """The set of terminal valuations of ``regs`` ((tid, reg) pairs).

    Terminal outcome sets (and deadlock detection) are preserved
    exactly by ``reduction="closure"`` — the cheap way to compute them
    on silent-step-heavy programs.
    """
    result = explore(program, max_states=max_states, reduction=reduction)
    if result.truncated:
        raise VerificationError("state space truncated; raise max_states")
    if result.stuck:
        raise VerificationError(
            "deadlocked configurations found", counterexample=result.stuck[0]
        )
    return result.terminal_locals(*regs)
