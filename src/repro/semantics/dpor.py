"""Sleep-set + covering-persistent-set DPOR over the closed macro-step
system (``reduction="dpor"``).

The ε-closure (:mod:`repro.semantics.reduce`) removes interleavings of
*invisible* work; this module removes interleavings of *independent
visible* work on top of it.  Two classic partial-order techniques are
composed over :func:`~repro.semantics.reduce.reduced_successors`:

Persistent sets
---------------
At each closed configuration the live threads are partitioned by the
conflict graph of their *whole-continuation footprints*: thread ``t``'s
footprint is the set of ``(component, variable)`` locations any
execution of ``cmds[t]`` may still read or write (``MethodCall`` is ⊤ —
abstract methods have arbitrary footprints).  Threads in different
components never access a common location for the rest of the run, so
the enabled transitions of one component form a persistent set:

* a component's variables are written only by its own threads, so no
  move of another component changes which values its reads can observe;
* a thread's viewfronts advance only through its own actions, so no
  move of another component changes which placements/read-froms its
  transitions admit.

Hence every transition outside the chosen component commutes with (and
cannot enable, disable, or alter) the transitions inside it — any trace
from the configuration to a terminal or stuck sink must eventually take
one of the chosen transitions, and that transition commutes to the
front (induction on trace length).  Selective search over a persistent
set per state therefore preserves every terminal configuration
bit-for-bit and every stuck verdict; no cycle proviso is needed for
those properties under the engine's stateful BFS, because canonical-key
cycles consist solely of transitions that leave both component states'
object identity unchanged (operation sets and view ranks are monotone).
The selection nevertheless *prefers* components with a memory-progress
transition (one that produces a new ``γ`` or ``β``) and falls back to
full expansion when none has one, which keeps the reduction effective
on await/polling loops instead of repeatedly selecting a spinning
reader.

Sleep sets
----------
Persistent sets cut the branching factor; sleep sets remove the
residual "commuting square" duplicates *between* the chosen siblings.
A sleep set rides every frontier entry (threaded through the engine
backends via the strategy's ``sleep_expand`` hook): thread ``u`` sleeps
at a child when the search has already expanded, from the same parent,
a sibling subtree in which every enabled transition of ``u`` is
independent of the edge taken — any trace starting with ``u`` from the
child is then a commutation of a trace already explored.  Sleeping
threads are skipped during expansion (counted as
``reduce.dpor.sleep_blocked``); a state whose every enabled thread is
asleep but which still has successors is re-expanded in full with empty
child sleeps, so sleep sets prune edges, never create artificial sinks.

Independence oracle
-------------------
:func:`independence` classifies an *ordered-pair-symmetric* relation on
enabled transitions, conservatively (``dependent`` when unsure, exactly
as the paper's synchronisation edges demand):

* same thread, silent macro-edges (a cut-off ε-chain) and abstract
  method operations: ``dependent``;
* two non-modifying operations (plain/acquiring reads): ``strong`` —
  reads create no operations and advance only the reading thread's own
  viewfront rows, so either order yields bit-identical configurations;
* operations on the same ``(component, variable)`` location with at
  least one write/update: ``dependent`` (this subsumes the
  synchronising release-acquire and RMW edges, which by definition
  meet at one location);
* two modifying operations on *different* variables of the *same*
  component: ``canonical`` — they commute up to timestamp placement
  (``fresh_ts`` draws from a component-wide pool), which the canonical
  rank-encoding collapses; sound only under canonical state keys,
  hence ``requires_canonical`` on the strategy;
* anything else (disjoint locations, at most sharing a component with
  a non-modifying op): ``strong``.

``strong`` independence is bit-level commutation — the property the
hypothesis differential suite (``tests/test_semantics_dpor.py``)
checks by executing random independent pairs in both orders.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lang import ast as A
from repro.lang.program import Program
from repro.memory import actions as ACT
from repro.obs import metrics as _metrics
from repro.semantics.config import Config
from repro.semantics.reduce import (
    ReductionStrategy,
    close_config,
    reduced_successors,
)
from repro.semantics.step import Transition

#: Independence verdicts.  ``STRONG`` — the two transitions commute to
#: bit-identical configurations; ``CANONICAL`` — they commute up to the
#: canonical rank-encoding of timestamps (same canonical key, possibly
#: different raw states); ``DEPENDENT`` — no commutation claimed.
DEPENDENT = "dependent"
STRONG = "strong"
CANONICAL = "canonical"

#: Whole-continuation footprint: ``(reads, writes, top)`` over
#: ``(component, variable)`` locations; ``top`` is the ⊤ element
#: (may touch anything — ``MethodCall`` and unknown nodes).
_Footprint = Tuple[FrozenSet, FrozenSet, bool]

_FP_EMPTY: _Footprint = (frozenset(), frozenset(), False)
_FP_TOP: _Footprint = (frozenset(), frozenset(), True)

#: Memoised footprints, keyed ``(node, in_lib)`` — AST nodes are
#: immutable and loop unfoldings rebuild structurally-equal suffixes,
#: so value-keyed memoisation hits across the exploration.  Bounded by
#: the same crude flush as the step-layer summaries.
_FOOTPRINTS: Dict[Tuple[A.Node, bool], _Footprint] = {}
_FOOTPRINTS_MAX = 100_000


def thread_footprint(cmd: Optional[A.Node], in_lib: bool = False) -> _Footprint:
    """The footprint of every possible execution of ``cmd``.

    Conservative over all executions: branches union, loops summarise
    their bodies; ``Cas``/``Fai`` both read and write their location;
    commands inside a ``LibBlock`` touch ``'L'`` locations.
    """
    if cmd is None:
        return _FP_EMPTY
    key = (cmd, in_lib)
    cached = _FOOTPRINTS.get(key)
    if cached is not None:
        return cached
    comp = "L" if in_lib else "C"
    if isinstance(cmd, A.LocalAssign):
        fp: _Footprint = _FP_EMPTY
    elif isinstance(cmd, A.Read):
        fp = (frozenset(((comp, cmd.var),)), frozenset(), False)
    elif isinstance(cmd, A.Write):
        fp = (frozenset(), frozenset(((comp, cmd.var),)), False)
    elif isinstance(cmd, (A.Cas, A.Fai)):
        loc = frozenset(((comp, cmd.var),))
        fp = (loc, loc, False)
    elif isinstance(cmd, A.Seq):
        fp = _fp_union(
            thread_footprint(cmd.first, in_lib),
            thread_footprint(cmd.second, in_lib),
        )
    elif isinstance(cmd, A.If):
        fp = _fp_union(
            thread_footprint(cmd.then_branch, in_lib),
            thread_footprint(cmd.else_branch, in_lib),
        )
    elif isinstance(cmd, A.While):
        fp = thread_footprint(cmd.body, in_lib)
    elif isinstance(cmd, A.Labeled):
        fp = thread_footprint(cmd.body, in_lib)
    elif isinstance(cmd, A.LibBlock):
        fp = thread_footprint(cmd.body, True)
    else:  # MethodCall and anything unforeseen: ⊤.
        fp = _FP_TOP
    if len(_FOOTPRINTS) >= _FOOTPRINTS_MAX:
        _FOOTPRINTS.clear()
    _FOOTPRINTS[key] = fp
    return fp


def _fp_union(a: _Footprint, b: _Footprint) -> _Footprint:
    if a[2] or b[2]:
        return _FP_TOP
    if a is _FP_EMPTY:
        return b
    if b is _FP_EMPTY:
        return a
    return a[0] | b[0], a[1] | b[1], False


def footprints_conflict(a: _Footprint, b: _Footprint) -> bool:
    """Whether two footprints may touch a common location with at
    least one write (⊤ conflicts with everything)."""
    if a[2] or b[2]:
        return True
    ra, wa, _ = a
    rb, wb, _ = b
    return bool(wa & (rb | wb)) or bool(wb & ra)


def independence(a: Transition, b: Transition) -> str:
    """Classify an enabled-transition pair (module docstring table)."""
    if a.tid == b.tid:
        return DEPENDENT
    act_a, act_b = a.action, b.action
    if act_a is None or act_b is None:
        return DEPENDENT  # cut-off ε macro-edge: no commutation claimed
    if ACT.is_method(act_a) or ACT.is_method(act_b):
        return DEPENDENT  # abstract footprints: conservatively dependent
    mod_a = ACT.is_modifying(act_a)
    mod_b = ACT.is_modifying(act_b)
    if not mod_a and not mod_b:
        return STRONG
    if (a.component, act_a.var) == (b.component, act_b.var):
        return DEPENDENT  # one location, ≥1 write/update: sync edges live here
    if mod_a and mod_b and a.component == b.component:
        return CANONICAL  # disjoint vars, shared timestamp pool
    return STRONG


def _partition(program: Program, cfg: Config) -> List[List[str]]:
    """Conflict-graph connected components over the live threads."""
    live = [t for t in program.tids if cfg.cmds[t] is not None]
    fps = {t: thread_footprint(cfg.cmds[t]) for t in live}
    parent = {t: t for t in live}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, t in enumerate(live):
        for u in live[i + 1:]:
            if footprints_conflict(fps[t], fps[u]):
                rt, ru = find(t), find(u)
                if rt != ru:
                    parent[ru] = rt
    groups: Dict[str, List[str]] = {}
    for t in live:
        groups.setdefault(find(t), []).append(t)
    return list(groups.values())


def _select_persistent(
    program: Program,
    cfg: Config,
    by_tid: Dict[str, List[Transition]],
) -> Tuple[FrozenSet, bool]:
    """Choose the persistent set to expand: ``(tids, proper)``.

    Candidates are conflict components with at least one enabled
    transition; among those with a memory-progress transition (a new
    ``γ`` or ``β`` — skipping pure spin-reads keeps the reduction
    useful on await loops) the one with the fewest enabled transitions
    wins, tie-broken by smallest thread id.  Falls back to full
    expansion (``proper=False``) when the threads don't split, no
    candidate makes memory progress, or the winner already covers every
    enabled transition.
    """
    enabled = frozenset(by_tid)
    groups = _partition(program, cfg)
    if len(groups) <= 1:
        return enabled, False
    best_key = None
    best_sel: Optional[FrozenSet] = None
    for group in groups:
        genabled = [t for t in group if t in by_tid]
        if not genabled:
            continue
        progress = any(
            tr.target.gamma is not cfg.gamma or tr.target.beta is not cfg.beta
            for t in genabled
            for tr in by_tid[t]
        )
        if not progress:
            continue
        key = (sum(len(by_tid[t]) for t in genabled), min(genabled))
        if best_key is None or key < best_key:
            best_key = key
            best_sel = frozenset(genabled)
    if best_sel is None or best_sel == enabled:
        return enabled, False
    return best_sel, True


def dpor_successors(
    program: Program, cfg: Config, sleep: FrozenSet
) -> List[Tuple[Transition, FrozenSet]]:
    """The DPOR expansion of a closed configuration under ``sleep``.

    Returns ``[(transition, child_sleep)]`` — empty exactly when the
    configuration has no successors at all.  ``sleep`` holds thread
    ids; a thread sleeps at a child when *all* of its enabled
    transitions here are independent (strong or canonical) of the edge
    taken, inherited from the parent sleep plus the already-expanded
    earlier siblings.
    """
    succs = reduced_successors(program, cfg)
    if not succs:
        return []
    by_tid: Dict[str, List[Transition]] = {}
    for tr in succs:
        by_tid.setdefault(tr.tid, []).append(tr)
    if any(tr.action is None for tr in succs):
        # A cut-off ε macro-edge defeats the footprint analysis (the
        # silent chain may re-enter any code): full expansion.
        selected, proper = frozenset(by_tid), False
    else:
        selected, proper = _select_persistent(program, cfg, by_tid)

    expand = sorted(t for t in selected if t not in sleep)
    if expand:
        blocked = [t for t in selected if t in sleep]
        if proper and _metrics._ACTIVE is not None:
            _metrics._ACTIVE.inc("reduce.dpor.persistent_expanded")
    else:
        # The whole selection is asleep: fall back to every enabled
        # thread minus sleep (the full set is trivially persistent and
        # sleep suppression is justified by the sleep invariant alone).
        expand = sorted(t for t in by_tid if t not in sleep)
        blocked = [t for t in by_tid if t in sleep]
        if not expand:
            # Every enabled thread is asleep yet successors exist —
            # re-expand in full with empty child sleeps rather than
            # manufacture an artificial sink.
            return [(tr, frozenset()) for tr in succs]
    if blocked and _metrics._ACTIVE is not None:
        _metrics._ACTIVE.inc(
            "reduce.dpor.sleep_blocked",
            sum(len(by_tid[t]) for t in blocked),
        )

    # Sleep candidates must be enabled here: independence is only
    # defined on enabled transitions, and a disabled thread may wake
    # into different behaviour.
    inherited = [u for u in sorted(sleep) if u in by_tid]
    out: List[Tuple[Transition, FrozenSet]] = []
    for i, t in enumerate(expand):
        candidates = inherited + expand[:i]
        for tr in by_tid[t]:
            child = frozenset(
                u
                for u in candidates
                if u != t
                and all(independence(utr, tr) != DEPENDENT for utr in by_tid[u])
            )
            out.append((tr, child))
    return out


def _dpor_plain_successors(program: Program, cfg: Config) -> List[Transition]:
    """``successors``-signature wrapper: the empty-sleep expansion —
    persistent selection only, used by consumers that don't thread
    sleep sets (``successor_function``, witness re-derivation)."""
    return [tr for tr, _sleep in dpor_successors(program, cfg, frozenset())]


DPOR_STRATEGY = ReductionStrategy(
    name="dpor",
    fingerprint_token="dpor-1",
    successors=_dpor_plain_successors,
    normalise_initial=close_config,
    closure_expansion=True,
    supports_witness_reexpansion=True,
    worker_safe=True,
    pipeline_safe=False,  # no cross-shard sleep-set exchange yet
    requires_canonical=True,
    sleep_expand=dpor_successors,
    metric_names=(
        "reduce.epsilon_fused",
        "reduce.covering_pruned",
        "reduce.dpor.sleep_blocked",
        "reduce.dpor.persistent_expanded",
    ),
)
