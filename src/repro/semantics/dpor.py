"""Sleep-set + covering-persistent-set DPOR over the closed macro-step
system (``reduction="dpor"``).

The ε-closure (:mod:`repro.semantics.reduce`) removes interleavings of
*invisible* work; this module removes interleavings of *independent
visible* work on top of it.  Two classic partial-order techniques are
composed over :func:`~repro.semantics.reduce.reduced_successors`:

Persistent sets
---------------
At each closed configuration the live threads are partitioned by the
conflict graph of their *footprints*: thread ``t``'s footprint is the
set of ``(component, variable)`` locations any execution of
``cmds[t]`` may still read or write (``MethodCall`` is ⊤ — abstract
methods have arbitrary footprints).  Two refinements sharpen the
partition beyond the whole-continuation union:

* **static disjointness** — thread pairs whose *whole-body* footprints
  never conflict are disjoint in every reachable configuration
  (continuation footprints only shrink), so their conflict test is
  skipped outright, memoised once per program;
* **phase sensitivity** — the default footprint is
  :func:`repro.analysis.phase_footprint`, which constant-folds branch
  conditions under the thread's *current* local state: locations
  touched only by statically-dead branches drop out, so the summary
  shrinks as the continuation advances (a mode register read early
  resolves the conditionals of later phases).  Both refinements yield
  subsets of the whole-continuation footprint, so the persistent-set
  argument below is unaffected; :func:`set_footprint_mode` reverts to
  ``"whole"`` for differential benchmarking.

Threads in different components never access a common location for the
rest of the run, so the enabled transitions of one component form a
persistent set:

* a component's variables are written only by its own threads, so no
  move of another component changes which values its reads can observe;
* a thread's viewfronts advance only through its own actions, so no
  move of another component changes which placements/read-froms its
  transitions admit.

Hence every transition outside the chosen component commutes with (and
cannot enable, disable, or alter) the transitions inside it — any trace
from the configuration to a terminal or stuck sink must eventually take
one of the chosen transitions, and that transition commutes to the
front (induction on trace length).  Selective search over a persistent
set per state therefore preserves every terminal configuration
bit-for-bit and every stuck verdict; no cycle proviso is needed for
those properties under the engine's stateful BFS, because canonical-key
cycles consist solely of transitions that leave both component states'
object identity unchanged (operation sets and view ranks are monotone).
The selection nevertheless *prefers* components with a memory-progress
transition (one that produces a new ``γ`` or ``β``) and falls back to
full expansion when none has one, which keeps the reduction effective
on await/polling loops instead of repeatedly selecting a spinning
reader.

Sleep sets
----------
Persistent sets cut the branching factor; sleep sets remove the
residual "commuting square" duplicates *between* the chosen siblings.
A sleep set rides every frontier entry (threaded through the engine
backends via the strategy's ``sleep_expand`` hook): thread ``u`` sleeps
at a child when the search has already expanded, from the same parent,
a sibling subtree in which every enabled transition of ``u`` is
independent of the edge taken — any trace starting with ``u`` from the
child is then a commutation of a trace already explored.  Sleeping
threads are skipped during expansion (counted as
``reduce.dpor.sleep_blocked``); a state whose every enabled thread is
asleep but which still has successors is re-expanded in full with empty
child sleeps, so sleep sets prune edges, never create artificial sinks.

Independence oracle
-------------------
:func:`independence` classifies an *ordered-pair-symmetric* relation on
enabled transitions, conservatively (``dependent`` when unsure, exactly
as the paper's synchronisation edges demand):

* same thread, silent macro-edges (a cut-off ε-chain) and abstract
  method operations: ``dependent``;
* two non-modifying operations (plain/acquiring reads): ``strong`` —
  reads create no operations and advance only the reading thread's own
  viewfront rows, so either order yields bit-identical configurations;
* operations on the same ``(component, variable)`` location with at
  least one write/update: ``dependent`` (this subsumes the
  synchronising release-acquire and RMW edges, which by definition
  meet at one location);
* two modifying operations on *different* variables of the *same*
  component: ``canonical`` — they commute up to timestamp placement
  (``fresh_ts`` draws from a component-wide pool), which the canonical
  rank-encoding collapses; sound only under canonical state keys,
  hence ``requires_canonical`` on the strategy;
* anything else (disjoint locations, at most sharing a component with
  a non-modifying op): ``strong``.

``strong`` independence is bit-level commutation — the property the
hypothesis differential suite (``tests/test_semantics_dpor.py``)
checks by executing random independent pairs in both orders.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.footprints import (
    FP_EMPTY as _FP_EMPTY,
    FP_TOP as _FP_TOP,
    fp_conflict,
    fp_union as _fp_union,
    phase_footprint,
)
from repro.analysis.footprints import Footprint as _Footprint
from repro.lang import ast as A
from repro.lang.program import Program
from repro.lang.walk import fold
from repro.memory import actions as ACT
from repro.obs import metrics as _metrics
from repro.semantics.config import Config
from repro.semantics.reduce import (
    ReductionStrategy,
    close_config,
    reduced_successors,
)
from repro.semantics.step import Transition
from repro.util.cache import evict_half

#: Independence verdicts.  ``STRONG`` — the two transitions commute to
#: bit-identical configurations; ``CANONICAL`` — they commute up to the
#: canonical rank-encoding of timestamps (same canonical key, possibly
#: different raw states); ``DEPENDENT`` — no commutation claimed.
DEPENDENT = "dependent"
STRONG = "strong"
CANONICAL = "canonical"

#: The footprint algebra lives in :mod:`repro.analysis.footprints`;
#: ``footprints_conflict`` keeps its historical name here.
footprints_conflict = fp_conflict

#: Memoised whole-continuation footprints, keyed ``(node, in_lib)`` —
#: AST nodes are immutable and loop unfoldings rebuild structurally-
#: equal suffixes, so value-keyed memoisation hits across the
#: exploration.  Bounded by oldest-half eviction (the shared
#: :mod:`repro.util.cache` policy, matching the codec intern tables).
_FOOTPRINTS: Dict[Tuple[A.Node, bool], _Footprint] = {}
_FOOTPRINTS_MAX = 100_000


def _fp_fold(node: Optional[A.Node], in_lib: bool, child_values) -> _Footprint:
    if node is None:
        return _FP_EMPTY
    comp = "L" if in_lib else "C"
    if isinstance(node, A.LocalAssign):
        return _FP_EMPTY
    if isinstance(node, A.Read):
        return (frozenset(((comp, node.var),)), frozenset(), False)
    if isinstance(node, A.Write):
        return (frozenset(), frozenset(((comp, node.var),)), False)
    if isinstance(node, (A.Cas, A.Fai)):
        loc = frozenset(((comp, node.var),))
        return (loc, loc, False)
    if isinstance(node, A.MethodCall):
        return _FP_TOP  # abstract methods have arbitrary footprints
    # Seq/If/While/Labeled/LibBlock: union over children (a LibBlock's
    # body was already folded with the library component flag).
    acc: _Footprint = _FP_EMPTY
    for value in child_values:
        acc = _fp_union(acc, value)
    return acc


def thread_footprint(cmd: Optional[A.Node], in_lib: bool = False) -> _Footprint:
    """The footprint of every possible execution of ``cmd``.

    Conservative over all executions: branches union, loops summarise
    their bodies; ``Cas``/``Fai`` both read and write their location;
    commands inside a ``LibBlock`` touch ``'L'`` locations.
    """
    return fold(
        cmd, _fp_fold, in_lib=in_lib,
        cache=_FOOTPRINTS, cache_max=_FOOTPRINTS_MAX,
    )


#: Which footprint feeds the conflict partition: ``"phase"`` (the
#: flow-sensitive :func:`repro.analysis.phase_footprint`, the default)
#: or ``"whole"`` (the continuation union above).
_FOOTPRINT_MODE = "phase"
FOOTPRINT_MODES = ("phase", "whole")


def set_footprint_mode(mode: str) -> str:
    """Select the partition footprint; returns the previous mode.

    Used by the differential benchmark
    (``benchmarks/test_bench_analysis.py``) to measure the phase
    refinement against whole-continuation footprints.
    """
    global _FOOTPRINT_MODE
    if mode not in FOOTPRINT_MODES:
        raise ValueError(
            f"unknown footprint mode {mode!r}; expected one of "
            f"{', '.join(FOOTPRINT_MODES)}"
        )
    previous = _FOOTPRINT_MODE
    _FOOTPRINT_MODE = mode
    return previous


#: Per-program statically-disjoint thread pairs, keyed ``id(program)``
#: with a weakref guard against id reuse.  Whole-body footprints bound
#: every reachable continuation's footprint, so a pair disjoint here is
#: disjoint forever — its conflict test is skipped in every partition.
_STATIC_DISJOINT: Dict[int, Tuple] = {}
_STATIC_DISJOINT_MAX = 1024


def _static_disjoint_pairs(program: Program) -> FrozenSet:
    hit = _STATIC_DISJOINT.get(id(program))
    if hit is not None:
        ref, pairs = hit
        if ref() is program:
            return pairs
    fps = {t: thread_footprint(program.body_of(t)) for t in program.tids}
    tids = program.tids
    pairs = frozenset(
        (t, u)
        for i, t in enumerate(tids)
        for u in tids[i + 1:]
        if not footprints_conflict(fps[t], fps[u])
    )
    if len(_STATIC_DISJOINT) >= _STATIC_DISJOINT_MAX:
        evict_half(_STATIC_DISJOINT)
    _STATIC_DISJOINT[id(program)] = (weakref.ref(program), pairs)
    return pairs


def independence(a: Transition, b: Transition) -> str:
    """Classify an enabled-transition pair (module docstring table)."""
    if a.tid == b.tid:
        return DEPENDENT
    act_a, act_b = a.action, b.action
    if act_a is None or act_b is None:
        return DEPENDENT  # cut-off ε macro-edge: no commutation claimed
    if ACT.is_method(act_a) or ACT.is_method(act_b):
        return DEPENDENT  # abstract footprints: conservatively dependent
    mod_a = ACT.is_modifying(act_a)
    mod_b = ACT.is_modifying(act_b)
    if not mod_a and not mod_b:
        return STRONG
    if (a.component, act_a.var) == (b.component, act_b.var):
        return DEPENDENT  # one location, ≥1 write/update: sync edges live here
    if mod_a and mod_b and a.component == b.component:
        return CANONICAL  # disjoint vars, shared timestamp pool
    return STRONG


def _partition(program: Program, cfg: Config) -> List[List[str]]:
    """Conflict-graph connected components over the live threads.

    Footprints are computed lazily per thread: a pair on the static-
    disjointness fast path never evaluates them at all, and phase mode
    only interprets the continuations actually compared.
    """
    live = [t for t in program.tids if cfg.cmds[t] is not None]
    disjoint = _static_disjoint_pairs(program)
    phase = _FOOTPRINT_MODE == "phase"
    fps: Dict[str, _Footprint] = {}

    def fp_of(t: str) -> _Footprint:
        fp = fps.get(t)
        if fp is None:
            if phase:
                fp = phase_footprint(cfg.cmds[t], cfg.locals[t])
            else:
                fp = thread_footprint(cfg.cmds[t])
            fps[t] = fp
        return fp

    parent = {t: t for t in live}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    skipped = 0
    for i, t in enumerate(live):
        for u in live[i + 1:]:
            if (t, u) in disjoint:
                skipped += 1
                continue
            if footprints_conflict(fp_of(t), fp_of(u)):
                rt, ru = find(t), find(u)
                if rt != ru:
                    parent[ru] = rt
    if skipped and _metrics._ACTIVE is not None:
        _metrics._ACTIVE.inc("reduce.dpor.static_disjoint", skipped)
    groups: Dict[str, List[str]] = {}
    for t in live:
        groups.setdefault(find(t), []).append(t)
    return list(groups.values())


def _select_persistent(
    program: Program,
    cfg: Config,
    by_tid: Dict[str, List[Transition]],
) -> Tuple[FrozenSet, bool]:
    """Choose the persistent set to expand: ``(tids, proper)``.

    Candidates are conflict components with at least one enabled
    transition; among those with a memory-progress transition (a new
    ``γ`` or ``β`` — skipping pure spin-reads keeps the reduction
    useful on await loops) the one with the fewest enabled transitions
    wins, tie-broken by smallest thread id.  Falls back to full
    expansion (``proper=False``) when the threads don't split, no
    candidate makes memory progress, or the winner already covers every
    enabled transition.
    """
    enabled = frozenset(by_tid)
    groups = _partition(program, cfg)
    if len(groups) <= 1:
        return enabled, False
    best_key = None
    best_sel: Optional[FrozenSet] = None
    for group in groups:
        genabled = [t for t in group if t in by_tid]
        if not genabled:
            continue
        progress = any(
            tr.target.gamma is not cfg.gamma or tr.target.beta is not cfg.beta
            for t in genabled
            for tr in by_tid[t]
        )
        if not progress:
            continue
        key = (sum(len(by_tid[t]) for t in genabled), min(genabled))
        if best_key is None or key < best_key:
            best_key = key
            best_sel = frozenset(genabled)
    if best_sel is None or best_sel == enabled:
        return enabled, False
    return best_sel, True


def dpor_successors(
    program: Program, cfg: Config, sleep: FrozenSet
) -> List[Tuple[Transition, FrozenSet]]:
    """The DPOR expansion of a closed configuration under ``sleep``.

    Returns ``[(transition, child_sleep)]`` — empty exactly when the
    configuration has no successors at all.  ``sleep`` holds thread
    ids; a thread sleeps at a child when *all* of its enabled
    transitions here are independent (strong or canonical) of the edge
    taken, inherited from the parent sleep plus the already-expanded
    earlier siblings.
    """
    succs = reduced_successors(program, cfg)
    if not succs:
        return []
    by_tid: Dict[str, List[Transition]] = {}
    for tr in succs:
        by_tid.setdefault(tr.tid, []).append(tr)
    if any(tr.action is None for tr in succs):
        # A cut-off ε macro-edge defeats the footprint analysis (the
        # silent chain may re-enter any code): full expansion.
        selected, proper = frozenset(by_tid), False
    else:
        selected, proper = _select_persistent(program, cfg, by_tid)

    expand = sorted(t for t in selected if t not in sleep)
    if expand:
        blocked = [t for t in selected if t in sleep]
        if proper and _metrics._ACTIVE is not None:
            _metrics._ACTIVE.inc("reduce.dpor.persistent_expanded")
    else:
        # The whole selection is asleep: fall back to every enabled
        # thread minus sleep (the full set is trivially persistent and
        # sleep suppression is justified by the sleep invariant alone).
        expand = sorted(t for t in by_tid if t not in sleep)
        blocked = [t for t in by_tid if t in sleep]
        if not expand:
            # Every enabled thread is asleep yet successors exist —
            # re-expand in full with empty child sleeps rather than
            # manufacture an artificial sink.
            return [(tr, frozenset()) for tr in succs]
    if blocked and _metrics._ACTIVE is not None:
        _metrics._ACTIVE.inc(
            "reduce.dpor.sleep_blocked",
            sum(len(by_tid[t]) for t in blocked),
        )

    # Sleep candidates must be enabled here: independence is only
    # defined on enabled transitions, and a disabled thread may wake
    # into different behaviour.
    inherited = [u for u in sorted(sleep) if u in by_tid]
    out: List[Tuple[Transition, FrozenSet]] = []
    for i, t in enumerate(expand):
        candidates = inherited + expand[:i]
        for tr in by_tid[t]:
            child = frozenset(
                u
                for u in candidates
                if u != t
                and all(independence(utr, tr) != DEPENDENT for utr in by_tid[u])
            )
            out.append((tr, child))
    return out


def _dpor_plain_successors(program: Program, cfg: Config) -> List[Transition]:
    """``successors``-signature wrapper: the empty-sleep expansion —
    persistent selection only, used by consumers that don't thread
    sleep sets (``successor_function``, witness re-derivation)."""
    return [tr for tr, _sleep in dpor_successors(program, cfg, frozenset())]


DPOR_STRATEGY = ReductionStrategy(
    name="dpor",
    fingerprint_token="dpor-1",
    successors=_dpor_plain_successors,
    normalise_initial=close_config,
    closure_expansion=True,
    supports_witness_reexpansion=True,
    worker_safe=True,
    pipeline_safe=False,  # no cross-shard sleep-set exchange yet
    requires_canonical=True,
    sleep_expand=dpor_successors,
    metric_names=(
        "reduce.epsilon_fused",
        "reduce.covering_pruned",
        "reduce.dpor.sleep_blocked",
        "reduce.dpor.persistent_expanded",
        "reduce.dpor.static_disjoint",
    ),
)
