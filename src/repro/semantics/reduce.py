"""Sound state-space reduction: ε-closure and covering-read pruning.

The explorer's state count is dominated by interleavings of *invisible*
work: silent (ε) transitions — ``LocalAssign``/``If``/``While``
bookkeeping — advance only the stepping thread's continuation and local
state, yet ordinary breadth-first enumeration multiplies the frontier by
every ordering of them against every other thread.  This module removes
that factor without changing what exploration *verifies*.

ε-closure
---------
:func:`reduced_successors` fuses each visible step with the stepping
thread's maximal chain of subsequent silent steps (and
:func:`close_config` normalises the initial configuration the same way),
so purely-local interleavings never enter the frontier.

**Soundness.**  Let ``t --ε--> t'`` be a silent step of thread ``t``.
By construction (:func:`repro.semantics.step.silent_step`):

1. *Locality*: the step is a function of ``(cmds[t], locals[t])`` alone
   and updates only those two fields — ``γ`` and ``β`` are untouched
   (asserted below on every closure).
2. *Determinism*: a command's step set is homogeneous — a silent-headed
   command admits exactly one step, so the silent chain of a thread is
   a deterministic sequence, and the *maximal* chain is well defined
   (up to the divergence cut-off below).
3. *Commutation*: any step of another thread ``u`` reads and writes
   ``(cmds[u], locals[u], γ, β)`` — disjoint from the silent step's
   footprint except for ``γ``/``β``, which the silent step neither
   reads nor writes.  Hence ``ε_t ; a_u`` and ``a_u ; ε_t`` reach the
   same configuration from the same source: silent steps are *left and
   right movers*.

(1)–(3) make the closure confluent: executing each thread's pending
silent chain in any interleaving reaches the unique configuration in
which no thread has a silent step pending, and every run of the original
system is a run of the reduced system with the silent steps commuted to
immediately follow their thread's previous visible step.  The reduced
system therefore reaches exactly the closed images of the original
reachable set — terminal configurations (which have no steps at all, so
are closed and preserved bit-for-bit, with their register valuations),
stuck configurations (stuck ⇒ no silent step pending ⇒ closed) and all
invariant verdicts over them are identical.  What changes is which
*intermediate* configurations exist to be stored, counted, or observed
by ``on_config``/``check_invariants`` callbacks.

A silent chain that revisits a ``(continuation, locals)`` pair — a
purely-local infinite loop — is cut off at the revisit: the offending
configuration keeps its silent transition as an ordinary (macro-)edge
and exploration degrades to the unreduced behaviour for that thread,
which keeps the reduction terminating on pathological inputs.

Covering-read pruning
---------------------
Among the read-from choices of a single ``Read`` (or failing CAS), two
non-synchronising candidates with the same written value produce
successors that differ *only* in where the reader's viewfront of the
read variable lands.  When the thread's continuation can neither access
that variable again nor publish its view map (no write/update/method/
lib step — any of which records the whole map in a new operation's
modification view), that viewfront entry is unobservable: the
successors are covering-equivalent, and only the mo-earliest candidate
per value is generated (``collapse_same_value`` in
:func:`repro.memory.transitions.read_steps` — the skip happens before
the successor component state is even constructed).  The gate is
computed per read site from memoised continuation summaries
(:func:`repro.semantics.step._node_summary`).

Policy registry
---------------
This module is the *single* source of truth for reduction policies.
Each policy is a :class:`ReductionStrategy` — successor function,
initial-configuration normalisation, cache-fingerprint token,
composability flags and metric names — registered under its name.
Every consumer (``validate_reduction``, the engine's
``successor_function``/``_check_reduction``, the persistent-cache key,
both parallel backends, batch, the CLI ``--reduction`` choices) reads
the registry; nothing else enumerates policies.

* ``"off"`` — the historical plain ``=⇒`` relation (the engine default).
* ``"closure"`` — ε-closure + covering-read prune (this module).
* ``"dpor"`` — sleep-set + covering-persistent-set partial-order
  reduction over the closed macro-step system
  (:mod:`repro.semantics.dpor`), registered from its own module via the
  import at the bottom of this file.

The reduction changes which configurations are stored — it is part of
the persistent result-cache key — and consumers that need the un-fused
transition graph (the refinement checkers and the Owicki–Gries
enumerator, whose assertions live at intermediate program points)
explicitly request ``reduction="off"`` at their call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lang.program import Program
from repro.obs import metrics as _metrics
from repro.semantics.config import Config
from repro.semantics.step import Transition, silent_step, successors

#: Cut-off for one fused silent chain.  Past this many fused steps (or
#: on an exact ``(continuation, locals)`` revisit) the remaining silent
#: work is left in place as an ordinary ε-edge, so divergent local
#: loops whose locals change every iteration (an unbounded counter) —
#: and pathologically long terminating chains — degrade to unreduced
#: exploration, which the ``max_states`` cap bounds, instead of
#: spinning or allocating inside a single successor call.
MAX_SILENT_CHAIN = 4096


@dataclass(frozen=True)
class ReductionStrategy:
    """One reduction policy, as every consumer sees it.

    ``successors`` is the policy's macro-step relation and
    ``normalise_initial`` its initial-configuration normalisation (both
    with the ``(program, cfg)`` signature the engine backends use).
    ``sleep_expand`` — set only for sleep-set policies — replaces
    ``successors`` inside exploration loops that thread sleep sets: it
    maps ``(program, cfg, sleep)`` to ``[(transition, child_sleep)]``
    pairs and returns an empty list exactly when ``cfg`` has no
    successors at all (sleep sets prune edges, never sink states).

    The flags drive composition:

    * ``closure_expansion`` — witness reconstruction must re-expand
      recorded macro-edges through the ε-closure replay (true for every
      policy built on the closed macro-step system);
    * ``supports_witness_reexpansion`` — recorded parent edges can be
      re-derived into a concrete, unreduced-replayable schedule;
    * ``worker_safe`` — the successor/sleep functions are stateless and
      may run inside sharded ``rounds`` workers;
    * ``pipeline_safe`` — usable on the pipeline backend (sleep-set
      policies are not until cross-shard sleep exchange exists);
    * ``requires_canonical`` — sound only under canonical state keys
      (the engine rejects ``canonicalise=False``).

    ``fingerprint_token`` feeds the persistent-cache key (alongside
    ``SEMANTICS_VERSION``): bump a policy's token to invalidate its
    cached verdicts without touching the other policies' entries.
    ``metric_names`` documents the policy's own counters (the
    :mod:`repro.obs.metrics` schema), collected through the active
    collector exactly like the closure's fusion/prune counts.
    """

    name: str
    fingerprint_token: str
    successors: Callable[[Program, Config], List[Transition]]
    normalise_initial: Callable[[Program, Config], Config]
    closure_expansion: bool = False
    supports_witness_reexpansion: bool = True
    worker_safe: bool = True
    pipeline_safe: bool = True
    requires_canonical: bool = False
    sleep_expand: Optional[
        Callable[[Program, Config, frozenset], List[Tuple]]
    ] = None
    metric_names: Tuple[str, ...] = field(default_factory=tuple)


#: The policy registry: name -> strategy.  Populated below ("off",
#: "closure") and by :mod:`repro.semantics.dpor` via the import at the
#: bottom of this module; insertion order is presentation order.
_REGISTRY: Dict[str, ReductionStrategy] = {}


def register_strategy(strategy: ReductionStrategy) -> ReductionStrategy:
    """Add ``strategy`` to the registry (a duplicate name is a bug)."""
    if strategy.name in _REGISTRY:
        raise ValueError(
            f"reduction policy {strategy.name!r} is already registered"
        )
    _REGISTRY[strategy.name] = strategy
    return strategy


def validate_reduction(reduction: str) -> str:
    """Check a reduction policy spec, returning it unchanged.  The
    error message lists the recognised policies."""
    if reduction not in _REGISTRY:
        raise ValueError(
            f"unknown reduction policy {reduction!r}; "
            f"expected one of {', '.join(_REGISTRY)}"
        )
    return reduction


def get_strategy(reduction: str) -> ReductionStrategy:
    """The registered strategy for ``reduction`` (validating it)."""
    return _REGISTRY[validate_reduction(reduction)]


#: Memoised silent chains: ``(cmd, ls) -> (cmd', ls', fused)``.  The
#: chain is a pure function of the continuation/locals pair (silent
#: steps read nothing else), and the ε-closure re-walks the same chains
#: constantly — every interleaving that reaches a thread at the same
#: local point closes it identically.  Bounded by the same crude flush
#: as the continuation-summary cache so long-lived processes don't
#: retain dead programs' ASTs.
_CHAINS: Dict[Tuple, Tuple] = {}
_CHAINS_MAX = 100_000


def _close_chain(cmd, ls) -> Tuple:
    """Run (or replay) the maximal silent chain from ``(cmd, ls)``.

    Returns ``(cmd', ls', fused)``.  Deterministic by homogeneity of
    the step relation; diverging silent chains (a purely-local loop)
    are cut off at the first revisited ``(continuation, locals)`` pair
    or after :data:`MAX_SILENT_CHAIN` fused steps, whichever comes
    first.  Memo hits replay the stored ``fused`` count into the active
    metrics collector, so ``reduce.epsilon_fused`` is identical to the
    unmemoised walk.
    """
    key = (cmd, ls)
    cached = _CHAINS.get(key)
    if cached is None:
        visited = None
        fused = 0
        while cmd is not None and fused < MAX_SILENT_CHAIN:
            step = silent_step(cmd, ls)
            if step is None:
                break
            if visited is None:
                visited = {(cmd, ls)}
            elif (cmd, ls) in visited:
                break  # divergent ε-loop: leave the silent edge in place
            else:
                visited.add((cmd, ls))
            _comp, cmd, ls = step
            fused += 1
        cached = (cmd, ls, fused)
        if len(_CHAINS) >= _CHAINS_MAX:
            _CHAINS.clear()
        _CHAINS[key] = cached
    if cached[2] and _metrics._ACTIVE is not None:
        _metrics._ACTIVE.inc("reduce.epsilon_fused", cached[2])
    return cached


def close_thread(cfg: Config, tid: str) -> Config:
    """Run thread ``tid``'s maximal chain of silent steps.

    A thin wrapper over the memoised :func:`_close_chain`.  The closure
    contract — every fused step is silent (``silent_step`` yields no
    action at all) and leaves both component states untouched — holds
    by construction: the chain maps only ``(cmd, ls)`` and the rebuilt
    configuration reuses ``γ``/``β`` unchanged (still asserted at
    :func:`close_config` as an interface check).
    """
    cmd = cfg.cmds[tid]
    if cmd is None:
        return cfg
    cmd2, ls2, fused = _close_chain(cmd, cfg.locals[tid])
    if not fused:
        return cfg
    return Config(
        cmds=cfg.cmds.set(tid, cmd2),
        locals=cfg.locals.set(tid, ls2),
        gamma=cfg.gamma,
        beta=cfg.beta,
    )


def close_config(program: Program, cfg: Config) -> Config:
    """ε-close every thread (the initial-configuration normalisation).

    By confluence (module docstring) the order of threads is
    irrelevant; afterwards no thread has a silent step pending, and
    :func:`reduced_successors` maintains that invariant by closing the
    stepping thread of each successor.
    """
    for tid in program.tids:
        closed = close_thread(cfg, tid)
        # Closure contract, checked at the interface: a fused silent
        # chain must leave both component states untouched (it fires if
        # close_thread is ever changed to run a non-silent step).
        assert closed.gamma is cfg.gamma and closed.beta is cfg.beta, (
            f"ε-closing thread {tid} altered a component state — silent "
            "steps must only rewrite the thread's continuation and locals"
        )
        cfg = closed
    return cfg


def reduced_successors(program: Program, cfg: Config) -> List[Transition]:
    """The macro-step successors of a closed configuration.

    Each underlying transition (with the covering-read prune enabled)
    is fused with the stepping thread's silent suffix; the macro-edge
    keeps the visible action and thread/component tags.  Callers must
    hand in closed configurations (the engine closes the initial one) —
    every target returned is then closed as well.
    """
    # The silent suffix is fused *inside* successor generation (the
    # ``close`` hook), before each Transition/Config is built — no
    # throwaway intermediate pair per closed successor.  The closure
    # contract (component states untouched) holds by construction:
    # ``_close_chain`` maps only ``(cmd, ls)``, and the target Config
    # is assembled once from the visible step's ``γ``/``β``.
    return successors(program, cfg, prune=True, close=_close_chain)


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

register_strategy(
    ReductionStrategy(
        name="off",
        # "off"/"closure" keep their historical plain-name tokens so
        # existing cached verdicts stay valid across the registry
        # refactor.
        fingerprint_token="off",
        successors=successors,
        normalise_initial=lambda program, cfg: cfg,
    )
)

register_strategy(
    ReductionStrategy(
        name="closure",
        fingerprint_token="closure",
        successors=reduced_successors,
        normalise_initial=close_config,
        closure_expansion=True,
        metric_names=("reduce.epsilon_fused", "reduce.covering_pruned"),
    )
)

# The DPOR strategy lives in its own module and registers itself here.
# The import is intentionally last: repro.semantics.dpor imports the
# strategy machinery defined above, so placing it at the bottom keeps
# the (reduce -> dpor -> reduce) cycle well-founded regardless of which
# module is imported first.
from repro.semantics.dpor import DPOR_STRATEGY  # noqa: E402

register_strategy(DPOR_STRATEGY)

#: Recognised reduction policies — derived from the registry, never
#: restated anywhere else.
REDUCTIONS = tuple(_REGISTRY)
