"""Phase-sensitive footprint summaries feeding DPOR's conflict graph.

The footprint algebra (``(reads, writes, top)`` over ``(component,
variable)`` locations) lives here together with a small abstract
interpreter that refines :func:`repro.semantics.dpor.thread_footprint`
in two ways the whole-continuation recursion cannot express:

* **flow sensitivity** — the interpreter threads an environment of
  *exactly-known* register values (seeded from the thread's concrete
  local state, so every entry is exact, not abstract) and uses it to
  constant-fold branch conditions: an ``If`` whose condition evaluates
  under the environment contributes only the taken branch, so locations
  touched exclusively by statically-dead code drop out of the summary;
* **phase sensitivity** — because the engine calls it per configuration
  on the *remaining* continuation with the *current* locals, the
  summary shrinks as execution advances: a mode register read in an
  earlier phase resolves the conditionals of later phases.

Soundness: environment entries are exact values of the thread's local
state, so a folded condition evaluates exactly as ``silent_step``
would — an eliminated branch is truly unreachable from this
configuration.  Registers whose value is not certain (assigned from a
read, an update, a method, or inside a loop body) are dropped from the
environment, falling back to the whole-continuation union.  Hence the
result always over-approximates the locations any execution of the
continuation may still touch — the contract DPOR's persistent-set
argument needs — while staying a subset of the whole-continuation
footprint.

Summaries are memoised under ``(node, in_lib, relevant-env)`` keys,
where the relevant environment is the projection onto the registers the
node actually reads; loop unfoldings rebuild structurally-equal
suffixes and register values recur, so the table hits across a whole
exploration (bounded by oldest-half eviction, the shared policy of
:mod:`repro.util.cache`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.lang import ast as A
from repro.lang.expr import (
    _BIN_OPS,
    _UN_OPS,
    BinOp,
    Expr,
    Lit,
    Reg,
    UnOp,
    Value,
    registers_of,
)
from repro.lang.walk import (
    assigned_register,
    fold,
    node_exprs,
)
from repro.util.cache import evict_half

# -- footprint algebra -------------------------------------------------------

#: ``(reads, writes, top)`` over ``(component, variable)`` locations;
#: ``top`` is the ⊤ element (may touch anything — ``MethodCall`` and
#: unknown nodes).
Footprint = Tuple[FrozenSet, FrozenSet, bool]

FP_EMPTY: Footprint = (frozenset(), frozenset(), False)
FP_TOP: Footprint = (frozenset(), frozenset(), True)


def fp_union(a: Footprint, b: Footprint) -> Footprint:
    if a[2] or b[2]:
        return FP_TOP
    if a is FP_EMPTY:
        return b
    if b is FP_EMPTY:
        return a
    return a[0] | b[0], a[1] | b[1], False


def fp_conflict(a: Footprint, b: Footprint) -> bool:
    """Whether two footprints may touch a common location with at least
    one write (⊤ conflicts with everything)."""
    if a[2] or b[2]:
        return True
    ra, wa, _ = a
    rb, wb, _ = b
    return bool(wa & (rb | wb)) or bool(wb & ra)


# -- constant evaluation -----------------------------------------------------


class _Unknown(Exception):
    """Raised inside :func:`try_eval` when a register is not known."""


def _ev(expr: Expr, env: Mapping[str, Value]) -> Value:
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Reg):
        try:
            return env[expr.name]
        except KeyError:
            raise _Unknown from None
    if isinstance(expr, UnOp):
        return _UN_OPS[expr.op](_ev(expr.operand, env))
    if isinstance(expr, BinOp):
        return _BIN_OPS[expr.op](_ev(expr.left, env), _ev(expr.right, env))
    raise _Unknown


def try_eval(
    expr: Expr, env: Mapping[str, Value]
) -> Tuple[bool, Optional[Value]]:
    """``(True, value)`` when ``expr`` evaluates under the known-register
    environment ``env``; ``(False, None)`` otherwise.

    Unknown operators and type errors also yield unknown — operationally
    they stick the thread, so any over-approximation is sound.
    """
    try:
        return True, _ev(expr, env)
    except _Unknown:
        return False, None
    except Exception:
        return False, None


# -- per-node register summaries (fold-memoised) -----------------------------

_READ_REGS: Dict = {}
_ASSIGNED_REGS: Dict = {}
_REGS_MAX = 100_000


def _read_regs_fold(node, in_lib, child_values) -> frozenset:
    if node is None:
        return frozenset()
    acc = frozenset()
    for expr in node_exprs(node):
        acc |= registers_of(expr)
    for value in child_values:
        acc |= value
    return acc


def read_registers(cmd: A.Com) -> frozenset:
    """Registers occurring in any expression anywhere in ``cmd``."""
    return fold(cmd, _read_regs_fold, cache=_READ_REGS, cache_max=_REGS_MAX)


def _assigned_regs_fold(node, in_lib, child_values) -> frozenset:
    if node is None:
        return frozenset()
    reg = assigned_register(node)
    acc = frozenset({reg}) if reg is not None else frozenset()
    for value in child_values:
        acc |= value
    return acc


def assigned_registers(cmd: A.Com) -> frozenset:
    """Registers any execution of ``cmd`` may assign."""
    return fold(
        cmd, _assigned_regs_fold, cache=_ASSIGNED_REGS, cache_max=_REGS_MAX
    )


# -- the phase-sensitive interpreter -----------------------------------------

#: Memoised ``(footprint, binds, kills)`` summaries, keyed
#: ``(node, in_lib, relevant-env projection)``.
_PHASE: Dict = {}
_PHASE_MAX = 100_000

_Env = Dict[str, Value]


def _without(env: _Env, reg: Optional[str]) -> _Env:
    if reg is None or reg not in env:
        return env
    out = dict(env)
    del out[reg]
    return out


def _without_many(env: _Env, regs: frozenset) -> _Env:
    if not regs:
        return env
    return {r: v for r, v in env.items() if r not in regs}


def _analyse(
    node: A.Com, env: _Env, in_lib: bool
) -> Tuple[Footprint, _Env]:
    if node is None:
        return FP_EMPTY, env
    relevant = read_registers(node)
    key = (
        node,
        in_lib,
        tuple(sorted((r, env[r]) for r in relevant if r in env)),
    )
    hit = _PHASE.get(key)
    if hit is not None:
        fp, binds, kills = hit
        out = dict(env)
        for r in kills:
            out.pop(r, None)
        out.update(binds)
        return fp, out
    fp, env_out = _analyse_raw(node, env, in_lib)
    # The node only rebinds registers it assigns, and both the summary
    # and the new bindings are functions of the relevant projection —
    # store the delta so one memo entry serves every incoming
    # environment with the same projection.
    assigned = assigned_registers(node)
    binds = tuple(
        sorted((r, env_out[r]) for r in assigned if r in env_out)
    )
    kills = frozenset(r for r in assigned if r not in env_out)
    if len(_PHASE) >= _PHASE_MAX:
        evict_half(_PHASE)
    _PHASE[key] = (fp, binds, kills)
    return fp, env_out


def _analyse_raw(
    node: A.Node, env: _Env, in_lib: bool
) -> Tuple[Footprint, _Env]:
    comp = "L" if in_lib else "C"
    if isinstance(node, A.LocalAssign):
        known, value = try_eval(node.expr, env)
        if known:
            out = dict(env)
            out[node.reg] = value
            return FP_EMPTY, out
        return FP_EMPTY, _without(env, node.reg)
    if isinstance(node, A.Read):
        fp = (frozenset(((comp, node.var),)), frozenset(), False)
        return fp, _without(env, node.reg)
    if isinstance(node, A.Write):
        return (frozenset(), frozenset(((comp, node.var),)), False), env
    if isinstance(node, (A.Cas, A.Fai)):
        loc = frozenset(((comp, node.var),))
        return (loc, loc, False), _without(env, node.reg)
    if isinstance(node, A.MethodCall):
        return FP_TOP, _without(env, node.dest)
    if isinstance(node, A.Seq):
        fp1, env1 = _analyse(node.first, env, in_lib)
        fp2, env2 = _analyse(node.second, env1, in_lib)
        return fp_union(fp1, fp2), env2
    if isinstance(node, A.If):
        known, value = try_eval(node.cond, env)
        if known:
            branch = node.then_branch if value else node.else_branch
            return _analyse(branch, env, in_lib)
        fp_t, env_t = _analyse(node.then_branch, env, in_lib)
        fp_e, env_e = _analyse(node.else_branch, env, in_lib)
        joined = {
            r: v for r, v in env_t.items() if r in env_e and env_e[r] == v
        }
        return fp_union(fp_t, fp_e), joined
    if isinstance(node, A.While):
        known, value = try_eval(node.cond, env)
        if known and not value:
            return FP_EMPTY, env
        # Iterations beyond the first see body-assigned registers with
        # unknown values: weaken the environment before summarising,
        # which both over-approximates every iteration and is the
        # post-loop environment.
        env_w = _without_many(env, assigned_registers(node.body))
        fp, _ignored = _analyse(node.body, env_w, in_lib)
        return fp, env_w
    if isinstance(node, A.Labeled):
        return _analyse(node.body, env, in_lib)
    if isinstance(node, A.LibBlock):
        return _analyse(node.body, env, True)
    return FP_TOP, {}


def phase_footprint(
    cmd: A.Com, ls: Mapping[str, Value], in_lib: bool = False
) -> Footprint:
    """The footprint of every execution of ``cmd`` starting from the
    concrete local state ``ls`` — a subset of
    :func:`repro.semantics.dpor.thread_footprint` with statically-dead
    branches removed."""
    if cmd is None:
        return FP_EMPTY
    fp, _env = _analyse(cmd, dict(ls.items()), in_lib)
    return fp
