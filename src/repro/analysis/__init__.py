"""Static program analysis over the :mod:`repro.lang` AST.

Three passes run before (or instead of) exploration:

* :mod:`repro.analysis.lint` — structural and flow-sensitive
  well-formedness checks (unbound registers, silent loops, dead writes,
  unreachable branches, duplicate labels, register shadowing);
* :mod:`repro.analysis.races` — a static race detector built on
  flow-sensitive per-thread access summaries with ordering annotations;
* :mod:`repro.analysis.footprints` — phase-sensitive footprint
  summaries feeding the DPOR reduction's conflict partitioning.

:func:`analyse_program` bundles lint and race findings into one
:class:`~repro.analysis.diagnostics.AnalysisReport`; the engine's
``analysis=`` policy (``"strict"`` / ``"warn"`` / ``"off"``) and the
``repro lint`` CLI both consume it.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    AnalysisReport,
    Diagnostic,
    merge_reports,
)
from repro.analysis.footprints import (
    FP_EMPTY,
    FP_TOP,
    Footprint,
    fp_conflict,
    fp_union,
    phase_footprint,
)
from repro.analysis.lint import lint_program
from repro.analysis.races import detect_races, operational_races
from repro.lang.program import Program

#: Engine analysis policies: refuse on errors / log findings / skip.
ANALYSIS_POLICIES: Tuple[str, ...] = ("strict", "warn", "off")


def validate_analysis(policy: str) -> str:
    """``policy`` itself when recognised; raises ``ValueError`` otherwise."""
    if policy not in ANALYSIS_POLICIES:
        raise ValueError(
            f"unknown analysis policy {policy!r}; "
            f"expected one of {', '.join(ANALYSIS_POLICIES)}"
        )
    return policy


def analyse_program(program: Program) -> AnalysisReport:
    """Every static finding of ``program``: lint plus race detection."""
    return merge_reports(lint_program(program), detect_races(program))


__all__ = [
    "ANALYSIS_POLICIES",
    "AnalysisReport",
    "Diagnostic",
    "ERROR",
    "FP_EMPTY",
    "FP_TOP",
    "Footprint",
    "INFO",
    "SEVERITIES",
    "WARNING",
    "analyse_program",
    "detect_races",
    "fp_conflict",
    "fp_union",
    "lint_program",
    "merge_reports",
    "operational_races",
    "phase_footprint",
    "validate_analysis",
]
