"""The lint pass: structural and flow-sensitive well-formedness checks.

Codes (see the README pass table):

``unbound-register`` (error)
    an expression reads a register that no node of the thread assigns
    and ``init_locals`` does not seed — :func:`~repro.lang.expr.eval_expr`
    raises :class:`~repro.util.errors.SemanticsError` the moment it runs;
``silent-loop`` (error)
    a ``While`` whose body performs no global access or method call and
    never assigns a condition register — once entered with the
    condition true it ε-diverges, which wedges the closure reduction's
    silent-chain fusion;
``dead-write`` (warning)
    a global location written (or updated) somewhere but read nowhere
    in the whole program;
``unreachable-branch`` (warning)
    an ``If`` branch or ``While`` body made unreachable by a condition
    that constant-folds under the flow environment (exactly-known
    register values propagated from ``init_locals`` through straight-
    line ``LocalAssign``s);
``duplicate-label`` (warning)
    two ``Labeled`` nodes of one thread carry the same label, making
    proof-outline program counters ambiguous;
``register-shadow`` (warning)
    a register assigned by a thread's client code is also assigned as a
    library-*private* register inside one of its ``LibBlock`` regions —
    the client trace projection (paper §6.1) will strip the client's
    own binding.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.diagnostics import (
    ERROR,
    WARNING,
    AnalysisReport,
    Diagnostic,
)
from repro.analysis.footprints import assigned_registers, try_eval
from repro.lang import ast as A
from repro.lang.expr import registers_of
from repro.lang.program import Program
from repro.lang.walk import (
    assigned_register,
    children,
    iter_nodes,
    node_exprs,
)

UNBOUND_REGISTER = "unbound-register"
SILENT_LOOP = "silent-loop"
DEAD_WRITE = "dead-write"
UNREACHABLE_BRANCH = "unreachable-branch"
DUPLICATE_LABEL = "duplicate-label"
REGISTER_SHADOW = "register-shadow"

#: Nodes whose execution is a visible (non-ε) transition.
_VISIBLE = (A.Read, A.Write, A.Cas, A.Fai, A.MethodCall)


def _has_visible(cmd: A.Com) -> bool:
    return any(isinstance(v.node, _VISIBLE) for v in iter_nodes(cmd))


def lint_program(program: Program) -> AnalysisReport:
    """All lint findings of ``program`` (race detection is separate —
    see :func:`repro.analysis.races.detect_races`)."""
    out: List[Diagnostic] = []
    reads: Set[Tuple[str, str]] = set()
    writes: Dict[Tuple[str, str], Tuple[str, Tuple[str, ...]]] = {}

    for tid in program.tids:
        body = program.body_of(tid)
        out.extend(_lint_registers(program, tid, body))
        out.extend(_lint_labels(tid, body))
        out.extend(_lint_shadowing(program, tid, body))
        _collect_global_accesses(body, reads, writes, tid)
        _lint_flow(
            body, dict(program.initial_locals_of(tid)), False, tid, out
        )

    for loc in sorted(set(writes) - reads):
        tid, path = writes[loc]
        comp, var = loc
        out.append(
            Diagnostic(
                code=DEAD_WRITE,
                severity=WARNING,
                message=(
                    f"global {var!r} ({'library' if comp == 'L' else 'client'}"
                    " component) is written but never read"
                ),
                tid=tid,
                path=path,
            )
        )
    return AnalysisReport(tuple(out))


# -- unbound registers -------------------------------------------------------


def _lint_registers(
    program: Program, tid: str, body: A.Com
) -> List[Diagnostic]:
    assigned = set(assigned_registers(body))
    assigned.update(program.initial_locals_of(tid))
    seen: Set[str] = set()
    out: List[Diagnostic] = []
    for visit in iter_nodes(body):
        for expr in node_exprs(visit.node):
            for reg in sorted(registers_of(expr)):
                if reg in assigned or reg in seen:
                    continue
                seen.add(reg)
                out.append(
                    Diagnostic(
                        code=UNBOUND_REGISTER,
                        severity=ERROR,
                        message=(
                            f"register {reg!r} is read but never assigned"
                            " in this thread"
                        ),
                        tid=tid,
                        path=visit.path,
                    )
                )
    return out


# -- duplicate labels --------------------------------------------------------


def _lint_labels(tid: str, body: A.Com) -> List[Diagnostic]:
    seen: Dict[object, Tuple[str, ...]] = {}
    out: List[Diagnostic] = []
    flagged: Set[object] = set()
    for visit in iter_nodes(body):
        if not isinstance(visit.node, A.Labeled):
            continue
        label = visit.node.label
        if label in seen and label not in flagged:
            flagged.add(label)
            out.append(
                Diagnostic(
                    code=DUPLICATE_LABEL,
                    severity=WARNING,
                    message=(
                        f"label {label!r} occurs more than once; program"
                        " counters are ambiguous"
                    ),
                    tid=tid,
                    path=visit.path,
                )
            )
        seen.setdefault(label, visit.path)
    return out


# -- client/library register shadowing ---------------------------------------


def _lint_shadowing(
    program: Program, tid: str, body: A.Com
) -> List[Diagnostic]:
    lib_private = A.library_registers(body)
    if not lib_private:
        return []
    client_assigned = set(program.initial_locals_of(tid))
    for visit in iter_nodes(body):
        if visit.in_lib:
            continue
        reg = assigned_register(visit.node)
        if reg is not None and not isinstance(visit.node, A.LibBlock):
            client_assigned.add(reg)
    out: List[Diagnostic] = []
    for reg in sorted(lib_private & client_assigned):
        out.append(
            Diagnostic(
                code=REGISTER_SHADOW,
                severity=WARNING,
                message=(
                    f"register {reg!r} is assigned by client code and as a"
                    " library-private register; the client trace projection"
                    " strips it"
                ),
                tid=tid,
            )
        )
    return out


# -- global access census (dead writes) --------------------------------------


def _collect_global_accesses(
    body: A.Com,
    reads: Set[Tuple[str, str]],
    writes: Dict[Tuple[str, str], Tuple[str, Tuple[str, ...]]],
    tid: str,
) -> None:
    for visit in iter_nodes(body):
        node = visit.node
        comp = "L" if visit.in_lib else "C"
        if isinstance(node, A.Read):
            reads.add((comp, node.var))
        elif isinstance(node, A.Write):
            writes.setdefault((comp, node.var), (tid, visit.path))
        elif isinstance(node, (A.Cas, A.Fai)):
            # Updates read their location too, so they are never dead.
            reads.add((comp, node.var))
            writes.setdefault((comp, node.var), (tid, visit.path))


# -- flow-sensitive pass: constant branches, silent loops --------------------


def _lint_flow(
    node: A.Com,
    env: Dict,
    in_lib: bool,
    tid: str,
    out: List[Diagnostic],
    path: Tuple[str, ...] = (),
) -> Dict:
    """Walk ``node`` threading the exactly-known register environment
    (the :mod:`repro.analysis.footprints` discipline), appending
    ``unreachable-branch`` and ``silent-loop`` findings; returns the
    post-state environment."""
    if node is None:
        return env
    if isinstance(node, A.LocalAssign):
        known, value = try_eval(node.expr, env)
        env = dict(env)
        if known:
            env[node.reg] = value
        else:
            env.pop(node.reg, None)
        return env
    if isinstance(node, (A.Read, A.Cas, A.Fai)):
        env = dict(env)
        env.pop(node.reg, None)
        return env
    if isinstance(node, A.Write):
        return env
    if isinstance(node, A.MethodCall):
        if node.dest is not None:
            env = dict(env)
            env.pop(node.dest, None)
        return env
    if isinstance(node, A.Seq):
        env = _lint_flow(
            node.first, env, in_lib, tid, out, path + ("first",)
        )
        return _lint_flow(
            node.second, env, in_lib, tid, out, path + ("second",)
        )
    if isinstance(node, A.If):
        known, value = try_eval(node.cond, env)
        if not known:
            env_t = _lint_flow(
                node.then_branch, env, in_lib, tid, out,
                path + ("then_branch",),
            )
            env_e = _lint_flow(
                node.else_branch, env, in_lib, tid, out,
                path + ("else_branch",),
            )
            return {
                r: v
                for r, v in env_t.items()
                if r in env_e and env_e[r] == v
            }
        live = node.then_branch if value else node.else_branch
        dead = node.else_branch if value else node.then_branch
        if dead is not None:
            which = "else" if value else "then"
            out.append(
                Diagnostic(
                    code=UNREACHABLE_BRANCH,
                    severity=WARNING,
                    message=(
                        f"condition is always {bool(value)}; the {which}"
                        " branch is unreachable"
                    ),
                    tid=tid,
                    path=path,
                )
            )
        return _lint_flow(
            live, env, in_lib, tid, out,
            path + ("then_branch" if value else "else_branch",),
        )
    if isinstance(node, A.While):
        known, value = try_eval(node.cond, env)
        if known and not value:
            out.append(
                Diagnostic(
                    code=UNREACHABLE_BRANCH,
                    severity=WARNING,
                    message=(
                        "loop condition is always False; the body is"
                        " unreachable"
                    ),
                    tid=tid,
                    path=path,
                )
            )
            return env
        body_assigns = assigned_registers(node.body)
        if (
            not _has_visible(node.body)
            and not (registers_of(node.cond) & body_assigns)
        ):
            certainty = (
                "diverges" if known and value else "diverges once entered"
            )
            out.append(
                Diagnostic(
                    code=SILENT_LOOP,
                    severity=ERROR,
                    message=(
                        f"silent loop {certainty}: the body performs no"
                        " global access and never assigns a condition"
                        " register (ε-divergence)"
                    ),
                    tid=tid,
                    path=path,
                )
            )
        env_w = {r: v for r, v in env.items() if r not in body_assigns}
        _lint_flow(node.body, env_w, in_lib, tid, out, path + ("body",))
        return env_w
    if isinstance(node, A.Labeled):
        return _lint_flow(node.body, env, in_lib, tid, out, path + ("body",))
    if isinstance(node, A.LibBlock):
        return _lint_flow(node.body, env, True, tid, out, path + ("body",))
    children(node)  # raises TypeError for unknown nodes
    return env
