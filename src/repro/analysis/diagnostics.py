"""The diagnostics model shared by every static pass.

A :class:`Diagnostic` is one finding — a stable code, a severity, a
human message, and (when the finding anchors to program text) the
thread id and the node path from that thread's body root (the
:func:`repro.lang.walk.iter_nodes` path).  An :class:`AnalysisReport`
bundles the findings of one program and is what the engine policy
hooks, the batch schema, and the ``lint`` CLI consume.

Severities
----------
``error``
    the program is malformed or certain to misbehave (an unbound
    register read raises at step time, a silent infinite loop wedges
    closure reduction); ``analysis="strict"`` refuses to explore and
    ``repro lint`` exits non-zero.
``warning``
    suspicious but explorable — statically racy pairs, dead writes,
    unreachable branches.  Never blocks exploration.
``info``
    reserved for advisory output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.lang.walk import format_path

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Recognised severities, most severe first.
SEVERITIES: Tuple[str, ...] = (ERROR, WARNING, INFO)

_RANK = {sev: i for i, sev in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str
    severity: str
    message: str
    tid: Optional[str] = None
    path: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in _RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    def format(self) -> str:
        """``severity[CODE] thread t @ path: message`` (one line)."""
        where = ""
        if self.tid is not None:
            where = f" thread {self.tid} @ {format_path(self.path)}"
        return f"{self.severity}[{self.code}]{where}: {self.message}"

    def to_dict(self) -> Dict:
        """JSON-safe rendering (batch reports, trace payloads)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "tid": self.tid,
            "path": list(self.path),
        }


@dataclass(frozen=True)
class AnalysisReport:
    """All findings of one program, sorted most-severe-first."""

    diagnostics: Tuple[Diagnostic, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.diagnostics,
                key=lambda d: (_RANK[d.severity], d.code, d.tid or "", d.path),
            )
        )
        object.__setattr__(self, "diagnostics", ordered)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == WARNING)

    def codes(self) -> FrozenSet[str]:
        """The set of finding codes (the catalog annotation currency)."""
        return frozenset(d.code for d in self.diagnostics)

    def clean(self) -> bool:
        return not self.diagnostics

    def describe(self) -> str:
        """One line per finding; ``"clean"`` when there are none."""
        if not self.diagnostics:
            return "clean"
        return "\n".join(d.format() for d in self.diagnostics)

    def to_dict(self) -> Dict:
        """The batch-report ``diagnostics`` block shape."""
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [d.to_dict() for d in self.diagnostics],
        }


def merge_reports(*reports: AnalysisReport) -> AnalysisReport:
    """One report holding every finding of ``reports``."""
    out: list = []
    for report in reports:
        out.extend(report.diagnostics)
    return AnalysisReport(tuple(out))
