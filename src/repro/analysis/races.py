"""The static race detector: flow-sensitive per-thread access summaries
with ordering annotations, checked pairwise for unsynchronised conflicts.

Model
-----
Each thread's body is summarised into a program-ordered list of
:class:`Access` records — ``(component, variable)`` location, kind
(read/write/update), acquire/release annotations, and the statically
known written value where the flow environment determines it.  A
``Cas`` contributes *two* records: the acquiring-releasing update of
its success path and the relaxed read of its failure path.  Statically
dead branches (conditions that constant-fold, the
:mod:`repro.analysis.footprints` discipline) contribute nothing.

Two accesses of different threads on one location *conflict* when at
least one modifies it.  A conflicting pair is reported as a ``race``
warning unless

* it is a **synchronisation pair** — one side releasing and the other
  acquiring (a release write against an acquire read, or any pair of
  RMW updates): the pair itself is the paper's release→acquire edge; or
* a **must happen-before chain** separates the two.

Must happens-before is built exclusively from *forced awaits* — the
polling-loop shape ``while cond(r): r ←ᴬ f`` the catalog's await
family uses: a loop whose only visible access is an acquiring read of
one location into the single condition register, entered with the
condition certainly true, and whose condition also holds for the
location's initial value (so the loop can only exit by reading a real
write).  Exit therefore synchronises with the write read — and if
*every* write that could satisfy the exit condition is releasing and
itself ordered after an access ``a``, then everything po-after the
await is ordered after ``a``.  The chain composes transitively across
threads (``MP-chain-await``) and handles rings; writes inside loop
bodies may serve as sources of the release leg, but an access inside a
loop body is never claimed ordered (a later iteration escapes the
chain), and only top-level awaits (not nested in a branch or loop) are
trusted to dominate the code after them.

Finally, an acquiring read of a location with no releasing write or
update anywhere in the program can never synchronise — reported as
``unmatched-acquire``.

The detector is deliberately conservative in exactly one direction:
it may flag pairs an exhaustive exploration proves ordered (warnings,
never errors), but a program it calls race-free has no reachable
configuration in which two threads have conflicting non-synchronising
actions enabled — the differential test
(:func:`operational_races`, exercised over the whole litmus catalog)
checks precisely that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import WARNING, AnalysisReport, Diagnostic
from repro.analysis.footprints import assigned_registers, try_eval
from repro.lang import ast as A
from repro.lang.expr import Value, registers_of
from repro.lang.program import Program

RACE = "race"
UNMATCHED_ACQUIRE = "unmatched-acquire"

READ = "read"
WRITE = "write"
UPDATE = "update"


@dataclass(frozen=True)
class Access:
    """One static global access of a thread."""

    tid: str
    comp: str
    var: str
    kind: str  # READ | WRITE | UPDATE
    acquire: bool
    release: bool
    pos: int  # program-order index within the thread
    path: Tuple[str, ...]
    in_loop: bool  # inside some While body (instances may repeat)
    value_known: bool = False  # writes: is the written value static?
    value: Optional[Value] = None

    @property
    def modifies(self) -> bool:
        return self.kind in (WRITE, UPDATE)

    @property
    def loc(self) -> Tuple[str, str]:
        return (self.comp, self.var)


@dataclass(frozen=True)
class Await:
    """A forced polling await: execution past ``pos`` implies having
    read (with acquire) a non-initial write to ``loc`` satisfying the
    exit condition."""

    tid: str
    comp: str
    var: str
    pos: int
    cond: object  # the loop condition over the single register ``reg``
    reg: str
    top_level: bool  # not nested inside a branch or another loop

    @property
    def loc(self) -> Tuple[str, str]:
        return (self.comp, self.var)


@dataclass
class ThreadSummary:
    """Ordered accesses and forced awaits of one thread."""

    tid: str
    accesses: List[Access] = field(default_factory=list)
    awaits: List[Await] = field(default_factory=list)


# -- summary construction ----------------------------------------------------


class _Collector:
    def __init__(self, program: Program, tid: str) -> None:
        self.program = program
        self.summary = ThreadSummary(tid=tid)
        self.pos = 0

    def _next_pos(self) -> int:
        self.pos += 1
        return self.pos

    def collect(self, node: A.Com, env: Dict, in_lib: bool,
                depth: int, path: Tuple[str, ...]) -> Dict:
        """``depth`` counts enclosing If/While regions (0 = top level)."""
        if node is None:
            return env
        tid = self.summary.tid
        comp = "L" if in_lib else "C"
        if isinstance(node, A.LocalAssign):
            known, value = try_eval(node.expr, env)
            env = dict(env)
            if known:
                env[node.reg] = value
            else:
                env.pop(node.reg, None)
            return env
        if isinstance(node, A.Read):
            self.summary.accesses.append(Access(
                tid=tid, comp=comp, var=node.var, kind=READ,
                acquire=node.acquire, release=False,
                pos=self._next_pos(), path=path, in_loop=depth > 0,
            ))
            env = dict(env)
            env.pop(node.reg, None)
            return env
        if isinstance(node, A.Write):
            known, value = try_eval(node.expr, env)
            self.summary.accesses.append(Access(
                tid=tid, comp=comp, var=node.var, kind=WRITE,
                acquire=False, release=node.release,
                pos=self._next_pos(), path=path, in_loop=depth > 0,
                value_known=known, value=value,
            ))
            return env
        if isinstance(node, (A.Cas, A.Fai)):
            pos = self._next_pos()
            self.summary.accesses.append(Access(
                tid=tid, comp=comp, var=node.var, kind=UPDATE,
                acquire=True, release=True, pos=pos, path=path,
                in_loop=depth > 0,
            ))
            if isinstance(node, A.Cas):
                # The failure path is a relaxed read of a value ≠ expect.
                self.summary.accesses.append(Access(
                    tid=tid, comp=comp, var=node.var, kind=READ,
                    acquire=False, release=False, pos=pos, path=path,
                    in_loop=depth > 0,
                ))
            env = dict(env)
            env.pop(node.reg, None)
            return env
        if isinstance(node, A.MethodCall):
            # Abstract method operations are linearised library updates;
            # they never race with variable accesses by construction.
            if node.dest is not None:
                env = dict(env)
                env.pop(node.dest, None)
            return env
        if isinstance(node, A.Seq):
            env = self.collect(
                node.first, env, in_lib, depth, path + ("first",)
            )
            return self.collect(
                node.second, env, in_lib, depth, path + ("second",)
            )
        if isinstance(node, A.If):
            known, value = try_eval(node.cond, env)
            if known:
                live = node.then_branch if value else node.else_branch
                branch = "then_branch" if value else "else_branch"
                return self.collect(
                    live, env, in_lib, depth, path + (branch,)
                )
            env_t = self.collect(
                node.then_branch, dict(env), in_lib, depth + 1,
                path + ("then_branch",),
            )
            env_e = self.collect(
                node.else_branch, dict(env), in_lib, depth + 1,
                path + ("else_branch",),
            )
            return {
                r: v for r, v in env_t.items()
                if r in env_e and env_e[r] == v
            }
        if isinstance(node, A.While):
            known, value = try_eval(node.cond, env)
            if known and not value:
                return env  # never entered: contributes nothing
            aw = self._forced_await(node, env, comp, in_lib, depth)
            env_w = {
                r: v for r, v in env.items()
                if r not in assigned_registers(node.body)
            }
            self.collect(
                node.body, env_w, in_lib, depth + 1, path + ("body",)
            )
            if aw is not None:
                self.summary.awaits.append(
                    Await(
                        tid=tid, comp=comp, var=aw[0], pos=self.pos,
                        cond=node.cond, reg=aw[1], top_level=depth == 0,
                    )
                )
            return env_w
        if isinstance(node, A.Labeled):
            return self.collect(
                node.body, env, in_lib, depth, path + ("body",)
            )
        if isinstance(node, A.LibBlock):
            return self.collect(
                node.body, env, True, depth, path + ("body",)
            )
        raise TypeError(f"unknown command node: {node!r}")

    def _forced_await(
        self, node: A.While, env: Dict, comp: str, in_lib: bool, depth: int
    ) -> Optional[Tuple[str, str]]:
        """``(var, reg)`` when ``node`` matches the forced-await shape
        under the entry environment ``env``; ``None`` otherwise."""
        cond_regs = registers_of(node.cond)
        if len(cond_regs) != 1:
            return None
        (reg,) = cond_regs
        # Entry must be certain: a loop that may be skipped proves nothing.
        entered, value = try_eval(node.cond, env)
        if not (entered and value):
            return None
        visible = _visible_nodes(node.body)
        if len(visible) != 1:
            return None
        read = visible[0]
        if not (
            isinstance(read, A.Read)
            and read.acquire
            and read.reg == reg
        ):
            return None
        init = self._initial_value(read.var, in_lib)
        if init is _MISSING:
            return None
        holds, still = try_eval(node.cond, {reg: init})
        if not (holds and still):
            # The initial value already satisfies exit: the loop can
            # terminate without observing any write.
            return None
        return read.var, reg

    _MISSING = object()

    def _initial_value(self, var: str, in_lib: bool):
        source = self.program.lib_vars if in_lib else self.program.client_vars
        return source.get(var, _MISSING)


_MISSING = object()


def _visible_nodes(cmd: A.Com) -> List[A.Node]:
    from repro.lang.walk import iter_nodes

    return [
        v.node
        for v in iter_nodes(cmd)
        if isinstance(v.node, (A.Read, A.Write, A.Cas, A.Fai, A.MethodCall))
    ]


def summarise_program(program: Program) -> Dict[str, ThreadSummary]:
    """Per-thread flow-sensitive access summaries of ``program``."""
    out: Dict[str, ThreadSummary] = {}
    for tid in program.tids:
        collector = _Collector(program, tid)
        collector.collect(
            program.body_of(tid),
            dict(program.initial_locals_of(tid)),
            False,
            0,
            (),
        )
        out[tid] = collector.summary
    return out


# -- must happens-before -----------------------------------------------------


class _HbOracle:
    def __init__(self, summaries: Dict[str, ThreadSummary]) -> None:
        self.summaries = summaries
        self.writes_by_loc: Dict[Tuple[str, str], List[Access]] = {}
        for summary in summaries.values():
            for acc in summary.accesses:
                if acc.modifies:
                    self.writes_by_loc.setdefault(acc.loc, []).append(acc)
        self._memo: Dict[Tuple, bool] = {}

    def _satisfying_writes(self, aw: Await) -> List[Access]:
        """Writes whose value could make ``aw``'s exit condition false
        (unknown values conservatively could)."""
        out = []
        for w in self.writes_by_loc.get(aw.loc, []):
            if w.value_known:
                known, still = try_eval(aw.cond, {aw.reg: w.value})
                if known and still:
                    continue  # keeps the loop spinning: not an exit source
            out.append(w)
        return out

    def ordered(self, a: Access, b: Access) -> bool:
        """Must ``a`` happen before ``b``?  (different threads)"""
        return self._hb(a, b, frozenset())

    def _hb(self, a: Access, b: Access, visiting: frozenset) -> bool:
        key = (a, b)
        memo = self._memo.get(key)
        if memo is not None:
            return memo
        if key in visiting:
            return False  # cycle: no well-founded chain
        visiting = visiting | {key}
        result = False
        for aw in self.summaries[b.tid].awaits:
            if not aw.top_level or aw.pos > b.pos:
                continue
            sats = self._satisfying_writes(aw)
            if not sats:
                continue
            if all(
                w.release and self._source_before(a, w, visiting)
                for w in sats
            ):
                result = True
                break
        self._memo[key] = result
        return result

    def _source_before(
        self, a: Access, w: Access, visiting: frozenset
    ) -> bool:
        """Is ``a`` certainly ordered no later than the release write
        ``w`` (so that synchronising with ``w`` covers ``a``)?"""
        if a.tid == w.tid:
            # Program order — but a loop-resident ``a`` has instances
            # after any given ``w`` instance.
            return a.pos <= w.pos and not a.in_loop
        return self._hb(a, w, visiting)


# -- the detector ------------------------------------------------------------


def _sync_pair(a: Access, b: Access) -> bool:
    return (a.release and b.acquire) or (b.release and a.acquire)


def detect_races(program: Program) -> AnalysisReport:
    """Race and unmatched-acquire findings of ``program``."""
    summaries = summarise_program(program)
    oracle = _HbOracle(summaries)
    accesses = [
        acc for s in summaries.values() for acc in s.accesses
    ]
    out: List[Diagnostic] = []

    reported: Set[Tuple] = set()
    for i, a in enumerate(accesses):
        for b in accesses[i + 1:]:
            if a.tid == b.tid or a.loc != b.loc:
                continue
            if not (a.modifies or b.modifies):
                continue
            if _sync_pair(a, b):
                continue
            if oracle.ordered(a, b) or oracle.ordered(b, a):
                continue
            pair_key = (a.loc, frozenset((a.tid, b.tid)))
            if pair_key in reported:
                continue
            reported.add(pair_key)
            first, second = sorted((a, b), key=lambda x: x.tid)
            out.append(
                Diagnostic(
                    code=RACE,
                    severity=WARNING,
                    message=(
                        f"threads {first.tid} and {second.tid} may access"
                        f" {a.var!r} concurrently ({first.kind} vs"
                        f" {second.kind}) without a release→acquire chain"
                    ),
                    tid=first.tid,
                    path=first.path,
                )
            )

    releasing_locs = {
        acc.loc for acc in accesses if acc.modifies and acc.release
    }
    flagged: Set[Tuple] = set()
    for acc in accesses:
        if not (acc.kind == READ and acc.acquire):
            continue
        if acc.loc in releasing_locs or acc.loc in flagged:
            continue
        flagged.add(acc.loc)
        out.append(
            Diagnostic(
                code=UNMATCHED_ACQUIRE,
                severity=WARNING,
                message=(
                    f"acquiring read of {acc.var!r} has no releasing write"
                    " anywhere in the program; it can never synchronise"
                ),
                tid=acc.tid,
                path=acc.path,
            )
        )
    return AnalysisReport(tuple(out))


# -- dynamic reference check -------------------------------------------------


def operational_races(
    program: Program, max_states: int = 200_000
) -> List[Tuple[str, Tuple[str, str]]]:
    """Reachable unsynchronised conflicts, by exhaustive exploration.

    Explores the unreduced transition system and reports every
    ``(variable, (tid, tid))`` for which some reachable configuration
    has two different threads' conflicting non-synchronising actions
    simultaneously enabled — the operational counterpart of the static
    detector's claim, used by the differential agreement suite.  Raises
    when the exploration truncates (the verdict would be unsound).
    """
    from repro.engine.core import explore_sequential
    from repro.memory import actions as ACT

    result = explore_sequential(
        program, max_states=max_states, collect_edges=True
    )
    if result.truncated:
        raise ValueError(
            "operational race check truncated; raise max_states"
        )
    races: Set[Tuple[str, Tuple[str, str]]] = set()
    for edge_list in (result.edges or {}).values():
        for i, (tid_a, comp_a, act_a, _ta) in enumerate(edge_list):
            for tid_b, comp_b, act_b, _tb in edge_list[i + 1:]:
                if tid_a == tid_b or act_a is None or act_b is None:
                    continue
                if ACT.is_method(act_a) or ACT.is_method(act_b):
                    continue  # linearised abstract operations
                if comp_a != comp_b or act_a.var != act_b.var:
                    continue
                if not (ACT.is_modifying(act_a) or ACT.is_modifying(act_b)):
                    continue
                if ACT.is_releasing(act_a) and ACT.is_acquiring(act_b):
                    continue
                if ACT.is_releasing(act_b) and ACT.is_acquiring(act_a):
                    continue
                races.add(
                    (act_a.var, tuple(sorted((tid_a, tid_b))))
                )
    return sorted(races)
