"""repro — Verifying C11-style weak memory libraries, in Python.

A reproduction of Dalvandi & Dongol, *Verifying C11-Style Weak Memory
Libraries* (PPoPP 2021, arXiv:2012.14133).  The paper's Isabelle/HOL
mechanisation becomes an executable model-checking framework:

* the RC11 RAR operational semantics over client/library state pairs
  (:mod:`repro.memory`, Figures 4-5);
* abstract object semantics — lock, stack, register, counter
  (:mod:`repro.objects`, Section 4 / Figure 6);
* the observability assertion language (:mod:`repro.assertions`, §5.1);
* Owicki-Gries proof-outline checking and the lock proof rules
  (:mod:`repro.logic`, §5.2-5.3 / Lemmas 3-4);
* contextual refinement — direct trace checking and a forward-simulation
  game solver (:mod:`repro.refinement`, §6 / Props 9-10);
* the sequence lock, ticket lock and spinlock implementations
  (:mod:`repro.impls`) and the paper's figure programs
  (:mod:`repro.figures`);
* the exploration engine (:mod:`repro.engine`) — pluggable frontier
  strategies (BFS / DFS / random swarm), a sharded multiprocess
  explorer, a persistent result cache keyed by stable program
  fingerprint, and a concurrent batch job runner with JSON reports.

Quickstart::

    from repro import ast as A, Lit, Reg, Program, Thread, explore

    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(1), release=True))
    t2 = A.seq(A.Read("r1", "f", acquire=True), A.Read("r2", "d"))
    prog = Program(threads={"1": Thread(t1), "2": Thread(t2)},
                   client_vars={"d": 0, "f": 0})
    result = explore(prog)
    print(result.terminal_locals(("2", "r1"), ("2", "r2")))

Engine quickstart::

    from repro import ExplorationEngine, ResultCache

    engine = ExplorationEngine(workers=4, cache=ResultCache())
    summary = engine.run(prog)          # cached on the second call
    full = engine.explore(prog)         # full graph, sharded exploration
"""

from repro.engine import (
    ExplorationEngine,
    ExploreResult,
    ExploreSummary,
    ResultCache,
    program_fingerprint,
    run_batch,
)
from repro.lang import ast
from repro.lang.expr import EMPTY, Lit, Reg, lit, reg
from repro.lang.program import Program, Thread
from repro.logic.outline import ProofOutline, ThreadOutline
from repro.logic.owicki import check_proof_outline
from repro.objects import (
    AbstractCounter,
    AbstractLock,
    AbstractObject,
    AbstractQueue,
    AbstractRegister,
    AbstractStack,
)
from repro.refinement.simulation import find_forward_simulation
from repro.refinement.tracecheck import check_program_refinement
from repro.semantics.config import Config, initial_config
from repro.semantics.explore import explore, final_outcomes, reachable
from repro.semantics.random_exec import random_run, replay_run, sample_outcomes
from repro.semantics.witness import (
    Witness,
    WitnessStep,
    find_path,
    find_terminal_witness,
    reconstruct_witness,
    replay_witness,
)
from repro.toolkit import verify_lock_implementation
from repro.util.pretty import format_config

__version__ = "1.0.0"

__all__ = [
    "AbstractCounter",
    "AbstractLock",
    "AbstractObject",
    "AbstractQueue",
    "AbstractRegister",
    "AbstractStack",
    "Config",
    "EMPTY",
    "ExplorationEngine",
    "ExploreResult",
    "ExploreSummary",
    "Lit",
    "ProofOutline",
    "Program",
    "Reg",
    "ResultCache",
    "Thread",
    "ThreadOutline",
    "Witness",
    "WitnessStep",
    "__version__",
    "ast",
    "check_proof_outline",
    "check_program_refinement",
    "explore",
    "final_outcomes",
    "find_forward_simulation",
    "find_path",
    "find_terminal_witness",
    "format_config",
    "initial_config",
    "lit",
    "program_fingerprint",
    "random_run",
    "reachable",
    "reconstruct_witness",
    "reg",
    "replay_run",
    "replay_witness",
    "run_batch",
    "sample_outcomes",
    "verify_lock_implementation",
]
