"""The Read/Write/Update transition rules of Figure 5.

Each rule is a generator over the nondeterministic choices the semantics
allows: *which* observable operation a read reads from, and *after which*
observable uncovered operation a write/update is placed.  The numeric
timestamp inside the chosen gap is canonical (midpoint / max+1), which is
sound because all placement nondeterminism is already enumerated by the
choice of predecessor.

All rules take the *executing* component ``gamma`` and the *context*
component ``beta`` and return updated pairs ``(gamma', beta')`` — the
caller (combined semantics, §3.2) orients client vs library.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.lang.expr import Value
from repro.memory.actions import (
    Action,
    Op,
    is_releasing,
    mk_read,
    mk_update,
    mk_write,
    wrval,
)
from repro.memory.state import ComponentState
from repro.memory.views import merge_views, view_union
from repro.obs import metrics as _metrics

#: One memory step: (action, op read-from or placed-after, γ', β').
MemStep = Tuple[Action, Op, ComponentState, ComponentState]

#: Sentinel for "no forbidden value" — ``None`` is a legal read value.
NO_FORBID = object()


def read_steps(
    gamma: ComponentState,
    beta: ComponentState,
    tid: str,
    var: str,
    acquire: bool,
    forbid: Value = NO_FORBID,
    collapse_same_value: bool = False,
) -> Iterator[MemStep]:
    """The ``Read`` rule: ``a ∈ {rd(x, n), rdA(x, n)}``.

    Yields one step per observable operation ``(w, q) ∈ γ.Obs(t, x)``.
    A synchronising pair — releasing write read by an acquiring read —
    merges the writer's modification view into the reader's thread views
    of *both* components; otherwise only the reader's view of ``x``
    advances to the write read.

    ``forbid`` filters *out* reads of one value: a failing CAS with
    expected value ``u`` is a relaxed read of any observable value
    ``≠ u``, which the combined semantics expresses as
    ``read_steps(..., forbid=u)``.

    ``collapse_same_value`` is the reduction layer's covering-read
    prune: among *non-synchronising* candidates, only the mo-earliest
    operation of each written value is enumerated.  Two such reads
    perform the same action, bind the same register value and differ
    only in where the reader's viewfront of ``var`` lands; the caller
    asserts (via the continuation summary in
    :mod:`repro.semantics.step`) that this viewfront entry is never
    consulted nor published again, so the skipped successors are
    covering-equivalent to the kept one — same enabled transitions,
    same terminal valuations, same stuck-ness everywhere downstream —
    and are skipped *here*, before any successor component state is
    constructed or canonically keyed.  Synchronising candidates also
    merge the write's modification view and are never collapsed.
    """
    candidates = gamma.obs(tid, var)
    if not candidates:
        return
    # Invariant across candidates: the executing thread's viewfronts
    # (and the mview table) belong to the pre-step states — hoisted out
    # of the per-candidate loop.
    gamma_tvm = gamma.thread_view_map(tid)
    beta_tvm = None
    gamma_mv = gamma.mview
    seen_values = None
    for w in candidates:
        n = wrval(w.act)
        if forbid is not NO_FORBID and n == forbid:
            continue
        sync = is_releasing(w.act) and acquire
        if collapse_same_value and not sync:
            if seen_values is None:
                seen_values = {n}
            elif n in seen_values:
                if _metrics._ACTIVE is not None:
                    _metrics._ACTIVE.inc("reduce.covering_pruned")
                continue
            else:
                seen_values.add(n)
        action = mk_read(var, n, tid, acquire=acquire)
        if sync:
            mv = gamma_mv[w]
            if beta_tvm is None:
                beta_tvm = beta.thread_view_map(tid)
            tview2 = merge_views(gamma_tvm, mv)
            ctview2 = merge_views(beta_tvm, mv)
            gamma2 = gamma.with_thread_view(tid, tview2)
            beta2 = beta.with_thread_view(tid, ctview2)
        else:
            tview2 = gamma_tvm.set(var, w)
            gamma2 = gamma.with_thread_view(tid, tview2)
            beta2 = beta
        yield action, w, gamma2, beta2


def write_steps(
    gamma: ComponentState,
    beta: ComponentState,
    tid: str,
    var: str,
    value: Value,
    release: bool,
) -> Iterator[MemStep]:
    """The ``Write`` rule: ``a ∈ {wr(x, n), wrR(x, n)}``.

    Yields one step per placement choice ``(w, q) ∈ γ.Obs(t, x) \\ γ.cvd``.
    The new operation's modification view records the writer's viewfront
    over both components (``mview' = tview' ∪ β.tview_t``) so that later
    synchronisation through this write updates views across components.
    """
    candidates = gamma.observable_uncovered(tid, var)
    if not candidates:
        return
    # Invariant across placement candidates: the action (same fields
    # for every placement — only the timestamp differs, and that lives
    # on the Op) and both pre-step viewfronts.
    action = mk_write(var, value, tid, release=release)
    gamma_tvm = gamma.thread_view_map(tid)
    beta_tvm = beta.thread_view_map(tid)
    fresh_ts = gamma.fresh_ts
    add_op = gamma.add_op
    for w in candidates:
        new_op = Op(action, fresh_ts(var, w.ts))
        tview2 = gamma_tvm.set(var, new_op)
        mview2 = view_union(tview2, beta_tvm)
        gamma2 = add_op(new_op, mview2, tid, tview2)
        yield action, w, gamma2, beta


def update_steps(
    gamma: ComponentState,
    beta: ComponentState,
    tid: str,
    var: str,
    expect: Optional[Value],
    make_new: "callable",
) -> Iterator[MemStep]:
    """The ``Update`` rule: ``a = updRA(x, m, n)``.

    A combination of Read and Write: the update reads an observable,
    *uncovered* operation ``(w, q)`` whose written value matches
    ``expect`` (``None`` = any, for FAI), covers it, and inserts the new
    operation immediately after it.  ``make_new(m)`` computes the written
    value from the value read (CAS: constant; FAI: ``m + 1``).

    Synchronisation: when ``w`` is releasing, the updater additionally
    acquires ``w``'s modification view into both components' thread views.
    The new operation's modification view is ``tview' ∪ ctview'``.
    """
    candidates = gamma.observable_uncovered(tid, var)
    if not candidates:
        return
    # Invariant across candidates, as in write_steps.
    gamma_tvm = gamma.thread_view_map(tid)
    beta_tvm = beta.thread_view_map(tid)
    gamma_mv = gamma.mview
    fresh_ts = gamma.fresh_ts
    add_op = gamma.add_op
    for w in candidates:
        m = wrval(w.act)
        if expect is not None and m != expect:
            continue
        n = make_new(m)
        action = mk_update(var, m, n, tid)
        new_op = Op(action, fresh_ts(var, w.ts))
        base_tview = gamma_tvm.set(var, new_op)
        if is_releasing(w.act):
            mv = gamma_mv[w]
            tview2 = merge_views(base_tview, mv)
            ctview2 = merge_views(beta_tvm, mv)
        else:
            tview2 = base_tview
            ctview2 = beta_tvm
        mview2 = view_union(tview2, ctview2)
        gamma2 = add_op(new_op, mview2, tid, tview2, cover=w)
        beta2 = beta.with_thread_view(tid, ctview2)
        yield action, w, gamma2, beta2
