"""Wire format v2: pickle-free flat batch codec for cross-shard traffic.

The sharded backends ship ``(digest, Config[, parent_edge])`` batches
between workers.  Wire format v1 (:mod:`repro.memory.codec`) already
compacted pickle's opcode stream — positional ``__reduce__`` tuples,
trailing-default truncation, numeric timestamps — but every batch still
paid for pickle's generic machinery: per-object reconstructor globals,
frame opcodes, memo bookkeeping.  This module replaces the opcode
stream entirely with a struct-packed *define-or-ref* format built on
per-batch intern tables:

Frame layout
------------
::

    byte 0      magic 0xF1
    byte 1      version 0x02
    byte 2      flags (reserved, 0)
    uvarint     entry count
    entries     digest | config | extras        (see below)

Every interned object — strings, ``Action``\\ s, ``(num, den)``
timestamps, ``Op``\\ s, views, component states, per-thread locals maps
and command-AST nodes — is written as one LEB128 varint ``n``:

* ``n == 0`` — an inline *definition* follows; the decoder appends the
  decoded object to that type's per-batch table (definitions nested in
  a definition are appended first, so indices are assigned in
  post-order);
* ``n >= 1`` — a back-reference to table entry ``n - 1``.

(Command-AST refs shift by one more: ``0`` is the terminated command
``None``, ``1`` introduces a definition, ``n >= 2`` refers to entry
``n - 2``.)  A second and later occurrence of any value inside a batch
therefore costs one or two bytes, and a batch carries no class
references, no reconstructor tuples and no pickle memo machinery.
Scalars use a small tag byte (None/False/True/Empty/int/str-ref) with
zigzag varints for ints; anything outside the semantic value universe
falls back to a length-prefixed embedded pickle, so the format never
rejects a payload.

A config entry is::

    digest       uvarint length | bytes
    cmds         uvarint count  | (tid str-ref, AST ref) ...
    locals       uvarint count  | (tid str-ref, locals-map ref) ...
    gamma, beta  component-state refs
    extras       u8 count | parent edges (digest, tid, component,
                 action-ref) or embedded pickles

and a component state is index-arrays into the tables: its ``ops`` and
``cvd`` as op refs, ``tview`` as ``(tid, var, op)`` triples, ``mview``
as ``(op, view)`` pairs — views may reference the *other* component's
ops, which is why the op table spans the whole batch.

Versioning and fallback
-----------------------
:func:`decode_batch` dispatches on the first byte: ``0xF1`` is flat
(the version byte must match :data:`VERSION`), ``0x80`` is a pickle
protocol-2+ opcode — a v1 blob, decoded via ``pickle.loads`` — and
anything else raises :class:`CodecError`.  The receive side therefore
never needs to know the sender's codec, and the v1 pickle codec
remains a measured fallback (``codec="pickle"`` / ``REPRO_CODEC``).
All decode failures — truncated buffers, bit flips, bad counts, wrong
versions — surface as the typed :class:`CodecError`, never a bare
``struct.error``/``IndexError`` (fuzzed in
``tests/test_memory_flatcodec.py``).

Decode-side interning is two-level: tables restore identity sharing
*within* a batch, and actions, timestamps and AST nodes additionally
intern into the per-process tables (shared with wire format v1) so
repeated values across batches collapse to one object with a cached
hash.

When a metrics collector is active (:data:`repro.obs.metrics._ACTIVE`)
every encode/decode records ``codec.encode_ns`` / ``codec.decode_ns``
/ ``codec.table_entries`` so flat-vs-pickle cost is visible in every
telemetry one-liner and batch report.
"""

from __future__ import annotations

import pickle
import sys
import time
from fractions import Fraction
from typing import Callable, NamedTuple, Optional

from repro.lang import ast as _ast
from repro.lang.expr import EMPTY, BinOp, Lit, Reg, UnOp, _Empty
from repro.memory import codec as _codec
from repro.memory.actions import Action, Op
from repro.memory.state import ComponentState
from repro.obs import metrics as _metrics
from repro.semantics.config import Config
from repro.util.fmap import FMap

MAGIC = 0xF1
VERSION = 0x02

#: Recognised batch codec names (the pipeline/CLI registry).
CODECS = ("flat", "pickle")


class CodecError(ValueError):
    """Typed decode failure: truncated, corrupted or wrong-version
    frames (and undecodable embedded pickles) all surface as this."""


# -- scalar value tags -------------------------------------------------------

_V_NONE = 0
_V_FALSE = 1
_V_TRUE = 2
_V_EMPTY = 3
_V_INT = 4
_V_STR = 5
_V_PICKLE = 6

# -- AST node tags -----------------------------------------------------------

_NODE_TAGS = {
    _ast.LocalAssign: 1,
    _ast.Write: 2,
    _ast.Read: 3,
    _ast.Cas: 4,
    _ast.Fai: 5,
    _ast.MethodCall: 6,
    _ast.Seq: 7,
    _ast.If: 8,
    _ast.While: 9,
    _ast.LibBlock: 10,
    _ast.Labeled: 11,
    Lit: 12,
    Reg: 13,
    UnOp: 14,
    BinOp: 15,
}
_NODE_PICKLE = 16

#: Cross-batch AST intern table (node → canonical node), bounded like
#: the v1 action/timestamp tables.
_AST_INTERN: dict = {}


def clear_intern_tables() -> None:
    """Drop this module's per-process intern table (test isolation)."""
    _AST_INTERN.clear()


def _intern_node(node):
    try:
        cached = _AST_INTERN.get(node)
    except TypeError:  # unhashable literal somewhere inside
        return node
    if cached is None:
        if len(_AST_INTERN) >= _codec._INTERN_MAX:
            _codec._evict_half(_AST_INTERN)
        _AST_INTERN[node] = node
        return node
    return cached


def _intern_ts(num: int, den: int) -> Fraction:
    table = _codec._TIMESTAMPS
    key = (num, den)
    ts = table.get(key)
    if ts is None:
        if len(table) >= _codec._INTERN_MAX:
            _codec._evict_half(table)
        ts = table[key] = Fraction(num, den)
    return ts


# -- writers -----------------------------------------------------------------


class _BytesWriter:
    """Append-only writer over a growable bytearray."""

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, b: int) -> None:
        self.buf.append(b)

    def raw(self, data) -> None:
        self.buf += data

    def uvarint(self, n: int) -> None:
        buf = self.buf
        while n > 0x7F:
            buf.append((n & 0x7F) | 0x80)
            n >>= 7
        buf.append(n)


class _ViewWriter:
    """Writer streaming straight into a fixed ``memoryview`` (ring
    memory); raises :class:`repro.memory.codec.BufferFull` the moment
    the encoding would overrun — no intermediate blob is ever built."""

    __slots__ = ("buf", "pos", "_len")

    def __init__(self, buf: memoryview) -> None:
        self.buf = buf
        self.pos = 0
        self._len = len(buf)

    def u8(self, b: int) -> None:
        p = self.pos
        if p >= self._len:
            raise _codec.BufferFull(p + 1)
        self.buf[p] = b
        self.pos = p + 1

    def raw(self, data) -> None:
        p = self.pos
        end = p + len(data)
        if end > self._len:
            raise _codec.BufferFull(end)
        self.buf[p:end] = data
        self.pos = end

    def uvarint(self, n: int) -> None:
        while n > 0x7F:
            self.u8((n & 0x7F) | 0x80)
            n >>= 7
        self.u8(n)


def _zigzag(n: int) -> int:
    return (n << 1) if n >= 0 else ((-n << 1) - 1)


def _unzigzag(u: int) -> int:
    return (u >> 1) if not (u & 1) else -((u + 1) >> 1)


# -- encoder -----------------------------------------------------------------


class _Encoder:
    """One batch encode: the per-batch memo tables plus the writer.

    Each ``*_len`` counter mirrors the decoder's table length exactly —
    it advances on every definition emitted, including the unhashable
    ones that cannot be memoised.
    """

    __slots__ = (
        "w", "defs",
        "strings", "actions", "actions_len", "timestamps", "ops",
        "views", "states", "locals_maps", "locals_len", "nodes",
        "nodes_len",
    )

    def __init__(self, w) -> None:
        self.w = w
        self.defs = 0
        self.strings: dict = {}
        self.actions: dict = {}
        self.actions_len = 0
        self.timestamps: dict = {}
        self.ops: dict = {}
        self.views: dict = {}
        self.states: dict = {}
        self.locals_maps: dict = {}
        self.locals_len = 0
        self.nodes: dict = {}
        self.nodes_len = 0

    # -- strings ----------------------------------------------------------
    def str_ref(self, s: str) -> None:
        table = self.strings
        idx = table.get(s)
        w = self.w
        if idx is not None:
            w.uvarint(idx + 1)
            return
        table[s] = len(table)
        self.defs += 1
        w.uvarint(0)
        data = s.encode("utf-8")
        w.uvarint(len(data))
        w.raw(data)

    # -- tagged scalar values ----------------------------------------------
    def value(self, v) -> None:
        w = self.w
        if v is None:
            w.u8(_V_NONE)
        elif v is True:
            w.u8(_V_TRUE)
        elif v is False:
            w.u8(_V_FALSE)
        elif type(v) is int:
            w.u8(_V_INT)
            w.uvarint(_zigzag(v))
        elif type(v) is str:
            w.u8(_V_STR)
            self.str_ref(v)
        elif isinstance(v, _Empty):
            w.u8(_V_EMPTY)
        elif isinstance(v, bool):
            w.u8(_V_TRUE if v else _V_FALSE)
        elif isinstance(v, int):
            w.u8(_V_INT)
            w.uvarint(_zigzag(int(v)))
        elif isinstance(v, str):
            w.u8(_V_STR)
            self.str_ref(v)
        else:
            blob = pickle.dumps(v, pickle.HIGHEST_PROTOCOL)
            w.u8(_V_PICKLE)
            w.uvarint(len(blob))
            w.raw(blob)

    # -- actions -----------------------------------------------------------
    def action_ref(self, a: Action) -> None:
        args = (
            a.kind, a.var, a.tid, a.val, a.rdval, a.method, a.index,
            a.sync,
        )
        n = 8
        defaults = _codec._ACTION_DEFAULTS
        while n > 2 and args[n - 1] == defaults[n - 1]:
            n -= 1
        key = args[:n]
        table = self.actions
        try:
            idx = table.get(key)
        except TypeError:  # unhashable value field: define every time
            idx, key = None, None
        w = self.w
        if idx is not None:
            w.uvarint(idx + 1)
            return
        if key is not None:
            table[key] = self.actions_len
        self.actions_len += 1
        self.defs += 1
        w.uvarint(0)
        w.u8(n)
        for field in args[:n]:
            self.value(field)

    # -- timestamps --------------------------------------------------------
    def ts_ref(self, ts: Fraction) -> None:
        table = self.timestamps
        idx = table.get(ts)
        w = self.w
        if idx is not None:
            w.uvarint(idx + 1)
            return
        table[ts] = len(table)
        self.defs += 1
        w.uvarint(0)
        w.uvarint(_zigzag(ts.numerator))
        w.uvarint(ts.denominator)

    # -- ops ---------------------------------------------------------------
    def op_ref(self, op: Op) -> None:
        table = self.ops
        idx = table.get(op)
        w = self.w
        if idx is not None:
            w.uvarint(idx + 1)
            return
        table[op] = len(table)
        self.defs += 1
        w.uvarint(0)
        self.action_ref(op.act)
        self.ts_ref(op.ts)

    # -- views (var → op maps, the mview values) ---------------------------
    def view_ref(self, view: FMap) -> None:
        table = self.views
        idx = table.get(view)
        w = self.w
        if idx is not None:
            w.uvarint(idx + 1)
            return
        table[view] = len(table)
        self.defs += 1
        w.uvarint(0)
        items = list(view.items())
        w.uvarint(len(items))
        for var, op in items:
            self.str_ref(var)
            self.op_ref(op)

    # -- component states --------------------------------------------------
    def state_ref(self, state: ComponentState) -> None:
        table = self.states
        idx = table.get(state)
        w = self.w
        if idx is not None:
            w.uvarint(idx + 1)
            return
        table[state] = len(table)
        self.defs += 1
        w.uvarint(0)
        cls = type(state)
        if cls is ComponentState:
            w.u8(0)
        else:  # subclass (the naive reference state): carry the class
            blob = pickle.dumps(cls, pickle.HIGHEST_PROTOCOL)
            w.u8(1)
            w.uvarint(len(blob))
            w.raw(blob)
        ops = state.ops
        w.uvarint(len(ops))
        for op in ops:
            self.op_ref(op)
        tview = list(state.tview.items())
        w.uvarint(len(tview))
        for (tid, var), op in tview:
            self.str_ref(tid)
            self.str_ref(var)
            self.op_ref(op)
        mview = list(state.mview.items())
        w.uvarint(len(mview))
        for op, view in mview:
            self.op_ref(op)
            self.view_ref(view)
        cvd = state.cvd
        w.uvarint(len(cvd))
        for op in cvd:
            self.op_ref(op)

    # -- per-thread locals maps --------------------------------------------
    def locals_ref(self, ls: FMap) -> None:
        table = self.locals_maps
        try:
            idx = table.get(ls)
        except TypeError:  # unhashable register value somewhere
            idx, ls_key = None, None
        else:
            ls_key = ls
        w = self.w
        if idx is not None:
            w.uvarint(idx + 1)
            return
        if ls_key is not None:
            table[ls_key] = self.locals_len
        self.locals_len += 1
        self.defs += 1
        w.uvarint(0)
        items = list(ls.items())
        w.uvarint(len(items))
        for reg, val in items:
            self.str_ref(reg)
            self.value(val)

    # -- command ASTs ------------------------------------------------------
    def ast_ref(self, node) -> None:
        w = self.w
        if node is None:
            w.uvarint(0)
            return
        table = self.nodes
        try:
            idx = table.get(node)
        except TypeError:
            idx, node_key = None, None
        else:
            node_key = node
        if idx is not None:
            w.uvarint(idx + 2)
            return
        w.uvarint(1)
        self.defs += 1
        tag = _NODE_TAGS.get(type(node))
        if tag is None:
            blob = pickle.dumps(node, pickle.HIGHEST_PROTOCOL)
            w.u8(_NODE_PICKLE)
            w.uvarint(len(blob))
            w.raw(blob)
        elif tag == 1:
            w.u8(1)
            self.str_ref(node.reg)
            self.ast_ref(node.expr)
        elif tag == 2:
            w.u8(2)
            self.str_ref(node.var)
            self.ast_ref(node.expr)
            w.u8(1 if node.release else 0)
        elif tag == 3:
            w.u8(3)
            self.str_ref(node.reg)
            self.str_ref(node.var)
            w.u8(1 if node.acquire else 0)
        elif tag == 4:
            w.u8(4)
            self.str_ref(node.reg)
            self.str_ref(node.var)
            self.ast_ref(node.expect)
            self.ast_ref(node.new)
        elif tag == 5:
            w.u8(5)
            self.str_ref(node.reg)
            self.str_ref(node.var)
        elif tag == 6:
            w.u8(6)
            self.str_ref(node.obj)
            self.str_ref(node.method)
            self.ast_ref(node.arg)
            self.value(node.dest)
        elif tag == 7:
            w.u8(7)
            self.ast_ref(node.first)
            self.ast_ref(node.second)
        elif tag == 8:
            w.u8(8)
            self.ast_ref(node.cond)
            self.ast_ref(node.then_branch)
            self.ast_ref(node.else_branch)
        elif tag == 9:
            w.u8(9)
            self.ast_ref(node.cond)
            self.ast_ref(node.body)
        elif tag == 10:
            w.u8(10)
            self.ast_ref(node.body)
            regs = sorted(node.public_regs)
            w.uvarint(len(regs))
            for r in regs:
                self.str_ref(r)
        elif tag == 11:
            w.u8(11)
            self.value(node.label)
            self.ast_ref(node.body)
        elif tag == 12:
            w.u8(12)
            self.value(node.value)
        elif tag == 13:
            w.u8(13)
            self.str_ref(node.name)
        elif tag == 14:
            w.u8(14)
            self.str_ref(node.op)
            self.ast_ref(node.operand)
        else:  # 15 — BinOp
            w.u8(15)
            self.str_ref(node.op)
            self.ast_ref(node.left)
            self.ast_ref(node.right)
        # Post-order index assignment: children (encoded above) claimed
        # theirs first, mirroring the decoder's append order.
        if node_key is not None:
            self.nodes[node_key] = self.nodes_len
        self.nodes_len += 1

    # -- configs / entries -------------------------------------------------
    def config(self, cfg: Config) -> None:
        w = self.w
        cmds = list(cfg.cmds.items())
        w.uvarint(len(cmds))
        for tid, com in cmds:
            self.str_ref(tid)
            self.ast_ref(com)
        locals_ = list(cfg.locals.items())
        w.uvarint(len(locals_))
        for tid, ls in locals_:
            self.str_ref(tid)
            self.locals_ref(ls)
        self.state_ref(cfg.gamma)
        self.state_ref(cfg.beta)

    def entry(self, e: tuple) -> None:
        w = self.w
        digest = e[0]
        w.uvarint(len(digest))
        w.raw(digest)
        self.config(e[1])
        extras = e[2:]
        w.u8(len(extras))
        for extra in extras:
            if (
                type(extra) is tuple
                and len(extra) == 4
                and type(extra[0]) is bytes
                and type(extra[1]) is str
                and type(extra[2]) is str
                and type(extra[3]) is Action
            ):  # a parent edge (digest, tid, component, action)
                w.u8(1)
                w.uvarint(len(extra[0]))
                w.raw(extra[0])
                self.str_ref(extra[1])
                self.str_ref(extra[2])
                self.action_ref(extra[3])
            else:
                blob = pickle.dumps(extra, pickle.HIGHEST_PROTOCOL)
                w.u8(0)
                w.uvarint(len(blob))
                w.raw(blob)


def _flat_encodable(batch) -> bool:
    """Whether every entry is ``(bytes digest, Config, ...)`` — the
    cross-shard shape.  Anything else (control payloads, ad-hoc ring
    traffic) falls back to the v1 pickle wire format, which
    :func:`decode_batch` transparently accepts."""
    for e in batch:
        if (
            not isinstance(e, tuple)
            or len(e) < 2
            or not isinstance(e[0], bytes)
            or type(e[1]) is not Config
        ):
            return False
    return True


def _note_encode(ns: int, tables: int) -> None:
    m = _metrics._ACTIVE
    if m is not None:
        m.inc("codec.encode_ns", ns)
        if tables:
            m.inc("codec.table_entries", tables)


def _note_decode(ns: int) -> None:
    m = _metrics._ACTIVE
    if m is not None:
        m.inc("codec.decode_ns", ns)


def encode_batch(batch) -> bytes:
    """Encode a cross-shard batch to flat wire-format-v2 bytes (or to a
    v1 pickle blob when the batch is not ``(digest, Config, ...)``
    shaped — the decoder accepts both)."""
    t0 = time.perf_counter_ns()
    if not _flat_encodable(batch):
        blob = pickle.dumps(batch, pickle.HIGHEST_PROTOCOL)
        _note_encode(time.perf_counter_ns() - t0, 0)
        return blob
    w = _BytesWriter()
    w.u8(MAGIC)
    w.u8(VERSION)
    w.u8(0)
    enc = _Encoder(w)
    w.uvarint(len(batch))
    for e in batch:
        enc.entry(e)
    _note_encode(time.perf_counter_ns() - t0, enc.defs)
    return bytes(w.buf)


def encode_batch_into(batch, buf: memoryview) -> int:
    """Encode a batch straight into ``buf`` (ring memory) and return
    the bytes written; raises :class:`repro.memory.codec.BufferFull`
    when it does not fit.  Same zero-intermediate-copy contract as the
    v1 :func:`repro.memory.codec.encode_batch_into`."""
    t0 = time.perf_counter_ns()
    if not _flat_encodable(batch):
        n = _codec.encode_batch_into(batch, buf)
        _note_encode(time.perf_counter_ns() - t0, 0)
        return n
    w = _ViewWriter(buf)
    w.u8(MAGIC)
    w.u8(VERSION)
    w.u8(0)
    enc = _Encoder(w)
    w.uvarint(len(batch))
    for e in batch:
        enc.entry(e)
    _note_encode(time.perf_counter_ns() - t0, enc.defs)
    return w.pos


# -- decoder -----------------------------------------------------------------


class _Reader:
    __slots__ = ("buf", "pos", "end")

    def __init__(self, buf) -> None:
        self.buf = buf
        self.pos = 0
        self.end = len(buf)

    def u8(self) -> int:
        p = self.pos
        if p >= self.end:
            raise CodecError("truncated frame: expected byte")
        b = self.buf[p]
        self.pos = p + 1
        return b

    def uvarint(self) -> int:
        buf, p, end = self.buf, self.pos, self.end
        result = 0
        shift = 0
        while True:
            if p >= end:
                raise CodecError("truncated frame: unterminated varint")
            b = buf[p]
            p += 1
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                break
            shift += 7
        self.pos = p
        return result

    def take(self, n: int) -> bytes:
        p = self.pos
        end = p + n
        if end > self.end:
            raise CodecError(
                f"truncated frame: {n} bytes claimed, "
                f"{self.end - p} remain"
            )
        self.pos = end
        return bytes(self.buf[p:end])

    def count(self) -> int:
        """A length whose elements each occupy >= 1 byte: a count
        larger than the remaining buffer is corruption, caught here
        before any allocation."""
        n = self.uvarint()
        if n > self.end - self.pos:
            raise CodecError(
                f"corrupt frame: count {n} exceeds remaining "
                f"{self.end - self.pos} bytes"
            )
        return n


class _Decoder:
    __slots__ = (
        "r", "strings", "actions", "timestamps", "ops", "views",
        "states", "locals_maps", "nodes",
    )

    def __init__(self, r: _Reader) -> None:
        self.r = r
        self.strings: list = []
        self.actions: list = []
        self.timestamps: list = []
        self.ops: list = []
        self.views: list = []
        self.states: list = []
        self.locals_maps: list = []
        self.nodes: list = []

    def _table(self, table: list, n: int):
        if n > len(table):
            raise CodecError(
                f"corrupt frame: reference {n} into table of "
                f"{len(table)}"
            )
        return table[n - 1]

    def str_ref(self) -> str:
        n = self.r.uvarint()
        if n:
            return self._table(self.strings, n)
        data = self.r.take(self.r.uvarint())
        try:
            s = sys.intern(data.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise CodecError(f"corrupt frame: bad utf-8 ({exc})") from exc
        self.strings.append(s)
        return s

    def value(self):
        tag = self.r.u8()
        if tag == _V_NONE:
            return None
        if tag == _V_FALSE:
            return False
        if tag == _V_TRUE:
            return True
        if tag == _V_EMPTY:
            return EMPTY
        if tag == _V_INT:
            return _unzigzag(self.r.uvarint())
        if tag == _V_STR:
            return self.str_ref()
        if tag == _V_PICKLE:
            return self._pickle_blob()
        raise CodecError(f"corrupt frame: unknown value tag {tag}")

    def _pickle_blob(self):
        blob = self.r.take(self.r.uvarint())
        try:
            return pickle.loads(blob)
        except Exception as exc:
            raise CodecError(
                f"corrupt frame: embedded pickle failed ({exc})"
            ) from exc

    def action_ref(self) -> Action:
        n = self.r.uvarint()
        if n:
            return self._table(self.actions, n)
        nfields = self.r.u8()
        if not 2 <= nfields <= 8:
            raise CodecError(
                f"corrupt frame: action arity {nfields} outside 2..8"
            )
        fields = tuple(self.value() for _ in range(nfields))
        act = _codec._act(*fields)  # per-process interning, as v1
        self.actions.append(act)
        return act

    def ts_ref(self) -> Fraction:
        n = self.r.uvarint()
        if n:
            return self._table(self.timestamps, n)
        num = _unzigzag(self.r.uvarint())
        den = self.r.uvarint()
        if den == 0:
            raise CodecError("corrupt frame: zero timestamp denominator")
        ts = _intern_ts(num, den)
        self.timestamps.append(ts)
        return ts

    def op_ref(self) -> Op:
        n = self.r.uvarint()
        if n:
            return self._table(self.ops, n)
        act = self.action_ref()
        ts = self.ts_ref()
        op = Op(act, ts)
        self.ops.append(op)
        return op

    def view_ref(self) -> FMap:
        n = self.r.uvarint()
        if n:
            return self._table(self.views, n)
        count = self.r.count()
        view = FMap(
            {self.str_ref(): self.op_ref() for _ in range(count)}
        )
        self.views.append(view)
        return view

    def state_ref(self) -> ComponentState:
        n = self.r.uvarint()
        if n:
            return self._table(self.states, n)
        tag = self.r.u8()
        if tag == 0:
            cls = ComponentState
        elif tag == 1:
            cls = self._pickle_blob()
            if not (isinstance(cls, type) and issubclass(cls, ComponentState)):
                raise CodecError(
                    f"corrupt frame: {cls!r} is not a ComponentState class"
                )
        else:
            raise CodecError(f"corrupt frame: unknown state tag {tag}")
        ops = frozenset(self.op_ref() for _ in range(self.r.count()))
        tview = FMap(
            {
                (self.str_ref(), self.str_ref()): self.op_ref()
                for _ in range(self.r.count())
            }
        )
        mview = FMap(
            {self.op_ref(): self.view_ref() for _ in range(self.r.count())}
        )
        cvd = frozenset(self.op_ref() for _ in range(self.r.count()))
        state = cls(ops=ops, tview=tview, mview=mview, cvd=cvd)
        self.states.append(state)
        return state

    def locals_ref(self) -> FMap:
        n = self.r.uvarint()
        if n:
            return self._table(self.locals_maps, n)
        count = self.r.count()
        ls = FMap({self.str_ref(): self.value() for _ in range(count)})
        self.locals_maps.append(ls)
        return ls

    def ast_ref(self):
        n = self.r.uvarint()
        if n == 0:
            return None
        if n >= 2:
            return self._table(self.nodes, n - 1)
        tag = self.r.u8()
        if tag == _NODE_PICKLE:
            node = self._pickle_blob()
        elif tag == 1:
            node = _ast.LocalAssign(self.str_ref(), self.ast_ref())
        elif tag == 2:
            node = _ast.Write(
                self.str_ref(), self.ast_ref(), self.r.u8() != 0
            )
        elif tag == 3:
            node = _ast.Read(
                self.str_ref(), self.str_ref(), self.r.u8() != 0
            )
        elif tag == 4:
            node = _ast.Cas(
                self.str_ref(), self.str_ref(), self.ast_ref(),
                self.ast_ref(),
            )
        elif tag == 5:
            node = _ast.Fai(self.str_ref(), self.str_ref())
        elif tag == 6:
            node = _ast.MethodCall(
                self.str_ref(), self.str_ref(), self.ast_ref(),
                self.value(),
            )
        elif tag == 7:
            node = _ast.Seq(self.ast_ref(), self.ast_ref())
        elif tag == 8:
            node = _ast.If(
                self.ast_ref(), self.ast_ref(), self.ast_ref()
            )
        elif tag == 9:
            node = _ast.While(self.ast_ref(), self.ast_ref())
        elif tag == 10:
            body = self.ast_ref()
            regs = frozenset(
                self.str_ref() for _ in range(self.r.count())
            )
            node = _ast.LibBlock(body, regs)
        elif tag == 11:
            node = _ast.Labeled(self.value(), self.ast_ref())
        elif tag == 12:
            node = Lit(self.value())
        elif tag == 13:
            node = Reg(self.str_ref())
        elif tag == 14:
            node = UnOp(self.str_ref(), self.ast_ref())
        elif tag == 15:
            node = BinOp(
                self.str_ref(), self.ast_ref(), self.ast_ref()
            )
        else:
            raise CodecError(f"corrupt frame: unknown AST tag {tag}")
        node = _intern_node(node)
        self.nodes.append(node)
        return node

    def config(self) -> Config:
        cmds = FMap(
            {self.str_ref(): self.ast_ref() for _ in range(self.r.count())}
        )
        locals_ = FMap(
            {
                self.str_ref(): self.locals_ref()
                for _ in range(self.r.count())
            }
        )
        gamma = self.state_ref()
        beta = self.state_ref()
        return Config(cmds=cmds, locals=locals_, gamma=gamma, beta=beta)

    def entry(self) -> tuple:
        digest = self.r.take(self.r.uvarint())
        cfg = self.config()
        extras = []
        for _ in range(self.r.u8()):
            kind = self.r.u8()
            if kind == 1:
                extras.append(
                    (
                        self.r.take(self.r.uvarint()),
                        self.str_ref(),
                        self.str_ref(),
                        self.action_ref(),
                    )
                )
            elif kind == 0:
                extras.append(self._pickle_blob())
            else:
                raise CodecError(
                    f"corrupt frame: unknown extra tag {kind}"
                )
        if extras:
            return (digest, cfg, *extras)
        return (digest, cfg)


def decode_batch(buf) -> list:
    """Decode a batch from either wire format, dispatching on the first
    byte: ``0xF1`` flat v2, ``0x80`` a v1 pickle blob.  All failures
    raise :class:`CodecError`."""
    t0 = time.perf_counter_ns()
    if len(buf) == 0:
        raise CodecError("empty frame")
    first = buf[0]
    if first == MAGIC:
        r = _Reader(buf)
        r.pos = 1
        version = r.u8()
        if version != VERSION:
            raise CodecError(
                f"unsupported flat wire-format version {version} "
                f"(this build speaks {VERSION})"
            )
        r.u8()  # flags (reserved)
        try:
            dec = _Decoder(r)
            batch = [dec.entry() for _ in range(r.count())]
        except CodecError:
            raise
        except Exception as exc:  # never a bare IndexError/ValueError/…
            raise CodecError(f"corrupt flat frame: {exc}") from exc
        _note_decode(time.perf_counter_ns() - t0)
        return batch
    if first == 0x80:  # a pickle protocol-2+ PROTO opcode: v1 fallback
        try:
            batch = pickle.loads(buf)
        except Exception as exc:
            raise CodecError(f"corrupt pickle frame: {exc}") from exc
        _note_decode(time.perf_counter_ns() - t0)
        return batch
    raise CodecError(
        f"bad frame magic 0x{first:02x} (expected 0x{MAGIC:02x} flat "
        "or 0x80 pickle)"
    )


# -- codec registry ----------------------------------------------------------


class BatchCodec(NamedTuple):
    """One batch wire format: bytes-producing and buffer-direct encode,
    plus the (shared, magic-dispatching) decode."""

    name: str
    encode_bytes: Callable[[list], bytes]
    encode_into: Callable[[list, memoryview], int]
    decode: Callable[[object], list]


def _pickle_encode_bytes(batch) -> bytes:
    t0 = time.perf_counter_ns()
    blob = pickle.dumps(batch, pickle.HIGHEST_PROTOCOL)
    _note_encode(time.perf_counter_ns() - t0, 0)
    return blob


def _pickle_encode_into(batch, buf: memoryview) -> int:
    t0 = time.perf_counter_ns()
    n = _codec.encode_batch_into(batch, buf)
    _note_encode(time.perf_counter_ns() - t0, 0)
    return n


_CODECS = {
    "flat": BatchCodec("flat", encode_batch, encode_batch_into, decode_batch),
    "pickle": BatchCodec(
        "pickle", _pickle_encode_bytes, _pickle_encode_into, decode_batch
    ),
}


def get_codec(name: str) -> BatchCodec:
    """The registered :class:`BatchCodec` for ``name`` (one of
    :data:`CODECS`)."""
    try:
        return _CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown batch codec {name!r}; "
            f"expected one of {', '.join(CODECS)}"
        ) from None
