"""Construction of the initial state ``Γ_Init`` (paper §3.3).

Every shared variable is initialised exactly once, at timestamp 0; every
thread's viewfront starts at the initialising write; the modification
view of every initialising operation is the union of all initial thread
views over *both* components; nothing is covered.  Abstract objects
contribute their own initial operations (e.g. ``(l.init_0, 0)``) to the
library component.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Tuple

from repro.lang.expr import Value
from repro.lang.program import Program
from repro.memory.actions import Op, mk_write
from repro.memory.state import ComponentState
from repro.memory.views import view_union
from repro.util.fmap import FMap
from repro.util.rationals import TS_ZERO


def initial_states(program: Program) -> Tuple[ComponentState, ComponentState]:
    """Build ``(γ_Init, β_Init)`` for a program.

    Returns the client and library component states.  Thread-local initial
    register values are handled separately by the combined semantics
    (:func:`repro.semantics.config.initial_config`).
    """
    tids = program.tids

    client_ops = {
        x: Op(mk_write(x, v, tid=None), TS_ZERO)
        for x, v in sorted(program.client_vars.items())
    }
    lib_ops = {
        y: Op(mk_write(y, v, tid=None), TS_ZERO)
        for y, v in sorted(program.lib_vars.items())
    }
    for obj in program.objects:
        for op in obj.init_ops():
            lib_ops[op.act.var] = op

    client_view = FMap(client_ops)
    lib_view = FMap(lib_ops)
    # mview of every initialising op spans both components (paper:
    # γInit.mview_xi = βInit.mview_yi = γInit.tview_t ∪ βInit.tview_t).
    full_view = view_union(client_view, lib_view)

    gamma = ComponentState(
        ops=frozenset(client_ops.values()),
        tview=FMap({(t, x): op for t in tids for x, op in client_ops.items()}),
        mview=FMap({op: full_view for op in client_ops.values()}),
        cvd=frozenset(),
    )
    beta = ComponentState(
        ops=frozenset(lib_ops.values()),
        tview=FMap({(t, y): op for t in tids for y, op in lib_ops.items()}),
        mview=FMap({op: full_view for op in lib_ops.values()}),
        cvd=frozenset(),
    )
    return gamma, beta
