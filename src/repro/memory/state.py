"""Component state ``(ops, tview, mview, cvd)`` (paper §3.3).

Each component (client or library) carries:

* ``ops`` — the set of modifying operations executed so far, each a
  timestamped :class:`~repro.memory.actions.Op`;
* ``tview`` — per-thread viewfronts over the component's variables
  (``tview_t ∈ GVar → ops``); a thread can read any operation on ``x``
  whose timestamp is at least ``tst(tview_t(x))``;
* ``mview`` — per-operation modification views spanning *both*
  components ("the modification view function may map to operations
  across the system");
* ``cvd`` — covered operations: those immediately prior to an update in
  modification order, with which no new operation may interact.

States are immutable; updates return new states sharing unmodified parts.

Indexed observation
-------------------
Every comparison the semantics performs (``Obs``, ``maxTS``, ``last``,
placement ceilings) is between operations on the *same* variable, so the
state maintains — alongside the flat ``ops`` set that defines equality
and hashing — a per-variable index: for each variable, the operations on
it sorted by timestamp (plus the parallel timestamp tuple), and one
sorted tuple of all timestamps in the component.  Successor constructors
(:meth:`add_op`, :meth:`with_thread_view`) derive the successor's index
*incrementally* from the parent's — a bisected tuple insert — instead of
rescanning and re-sorting ``ops``, turning the explorer's inner loop
(``obs`` per read candidate, ``fresh`` per placement candidate,
``canonical_key`` per visited state) from O(|ops|) scans into bisect
plus slice.  The index and the per-thread view-map cache are derived
data: they never participate in ``==``/``hash``, and states built
directly from an ``ops`` set materialise them lazily.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.memory.actions import Action, Op
from repro.memory.views import View
from repro.util.fmap import FMap
from repro.util.rationals import between, next_after

#: Per-variable index entry: (ops on the variable sorted by timestamp,
#: the parallel tuple of their timestamps — the bisect key sequence).
VarIndex = Tuple[Tuple[Op, ...], Tuple[Fraction, ...]]


@dataclass(frozen=True)
class ComponentState:
    """The weak-memory state of one component (client γ or library β)."""

    ops: FrozenSet[Op] = frozenset()
    #: tview[(tid, var)] -> Op ; flattened for cheap single-entry updates.
    tview: FMap = field(default_factory=FMap)
    #: mview[op] -> View (var -> Op, spanning both components).
    mview: FMap = field(default_factory=FMap)
    cvd: FrozenSet[Op] = frozenset()

    # -- serialisation -------------------------------------------------------
    def __reduce__(self):
        """Compact positional encoding of the four defining fields
        (:mod:`repro.memory.codec`); indices, view-map caches and any
        cached canonical data are derived — receivers rebuild lazily."""
        from repro.memory.codec import reduce_component_state

        return reduce_component_state(self)

    def __getstate__(self):
        """The defining fields only (pre-codec wire format — retained so
        old pickles load and :func:`repro.memory.codec.legacy_dumps`
        can reproduce the format for benchmarking)."""
        return {
            "ops": self.ops,
            "tview": self.tview,
            "mview": self.mview,
            "cvd": self.cvd,
        }

    def __setstate__(self, state) -> None:
        for k, v in state.items():
            object.__setattr__(self, k, v)

    # -- derived indices -----------------------------------------------------
    @property
    def index(self) -> Mapping[str, VarIndex]:
        """``var -> (ops sorted by ts, their timestamps)`` over ``ops``.

        Built lazily from ``ops`` on first use; successor constructors
        hand their successors an incrementally-updated copy instead.
        """
        cached = self.__dict__.get("_index")
        if cached is None:
            grouped: Dict[str, list] = {}
            for op in self.ops:
                grouped.setdefault(op.act.var, []).append(op)
            cached = {}
            for var, group in grouped.items():
                group.sort(key=_op_ts)
                cached[var] = (tuple(group), tuple(o.ts for o in group))
            object.__setattr__(self, "_index", cached)
        return cached

    @property
    def all_ts(self) -> Tuple[Fraction, ...]:
        """All timestamps in ``ops``, sorted ascending (the component-wide
        ceiling index used by :meth:`fresh_ts`)."""
        cached = self.__dict__.get("_all_ts")
        if cached is None:
            cached = tuple(sorted(op.ts for op in self.ops))
            object.__setattr__(self, "_all_ts", cached)
        return cached

    def _seed_caches(
        self,
        index: Mapping[str, VarIndex],
        all_ts: Tuple[Fraction, ...],
        tvm_cache: Dict[str, View],
    ) -> "ComponentState":
        """Install precomputed derived data on a freshly built successor."""
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_all_ts", all_ts)
        object.__setattr__(self, "_tvm_cache", tvm_cache)
        return self

    def _derived_tvm_cache(self, tid: str, view: View) -> Dict[str, View]:
        """The successor's thread-view-map cache after ``tview_t`` merges
        ``view``: entries of other threads stay valid, ``tid``'s is
        updated in place when already materialised."""
        cache = self.__dict__.get("_tvm_cache") or {}
        derived = dict(cache)
        old = derived.pop(tid, None)
        if old is not None:
            derived[tid] = old.set_many(dict(view.items()))
        return derived

    # -- observation --------------------------------------------------------
    def thread_view(self, tid: str, var: str) -> Optional[Op]:
        """``tview_t(x)`` — this thread's viewfront for ``x`` (None if the
        variable is not part of this component)."""
        return self.tview.get((tid, var))

    def obs(self, tid: str, var: str) -> Tuple[Op, ...]:
        """``Obs(t, x)``: operations on ``x`` observable to ``t``.

        ``{(a, q) ∈ ops | var(a) = x ∧ tst(tview_t(x)) ≤ q}`` — sorted by
        timestamp for deterministic iteration.  A bisect on the variable's
        index plus a slice: no scan over ``ops``.
        """
        front = self.tview.get((tid, var))
        if front is None:
            return ()
        entry = self.index.get(var)
        if entry is None:
            return ()
        seq, ts_seq = entry
        return seq[bisect_left(ts_seq, front.ts):]

    def observable_uncovered(self, tid: str, var: str) -> Tuple[Op, ...]:
        """``Obs(t, x) \\ cvd`` — candidates for write/update placement."""
        observable = self.obs(tid, var)
        if not self.cvd:
            return observable
        cvd = self.cvd
        return tuple(op for op in observable if op not in cvd)

    def ops_on(self, var: str) -> Tuple[Op, ...]:
        """All operations on ``var`` (``ops|x``), sorted by timestamp."""
        entry = self.index.get(var)
        return entry[0] if entry is not None else ()

    def max_ts(self, var: str) -> Optional[Fraction]:
        """``maxTS(var, σ)``."""
        entry = self.index.get(var)
        return entry[1][-1] if entry is not None else None

    def last_op(self, var: str, only=None) -> Optional[Op]:
        """``last(W, x)`` over this component's ops.

        ``only`` optionally filters the candidate actions (e.g. writes
        only); the variable's index is walked backwards from the maximal
        timestamp, so the unfiltered case is O(1).
        """
        entry = self.index.get(var)
        if entry is None:
            return None
        seq = entry[0]
        if only is None:
            return seq[-1]
        for op in reversed(seq):
            if only(op.act):
                return op
        return None

    def timestamps(self) -> Tuple[Fraction, ...]:
        """All timestamps in ``ops``, ascending (for freshness checks)."""
        return self.all_ts

    def fresh_ts(self, var: str, q: Fraction) -> Fraction:
        """The canonical fresh timestamp ``q'`` with ``fresh(q, q')``.

        ``fresh(q, q') = q < q' ∧ ∀w' ∈ ops. q < tst(w') ⇒ q' < tst(w')``
        (paper §3.3) — the ceiling is the least timestamp above ``q``
        across the *whole component*, found by one bisect on the sorted
        timestamp index instead of a scan of ``timestamps()``.  ``var``
        names the variable being modified; only the position of ``q'``
        within ``var``'s modification order is semantically observable
        (see :mod:`repro.semantics.canon`), but the numeric choice
        follows the paper's component-wide gap so raw (un-canonicalised)
        exploration is unchanged.
        """
        all_ts = self.all_ts
        i = bisect_right(all_ts, q)
        if i == len(all_ts):
            return next_after(q)
        return between(q, all_ts[i])

    # -- functional update ---------------------------------------------------
    def with_thread_view(self, tid: str, view: View) -> "ComponentState":
        """Merge ``view`` into the viewfront of ``tid`` (``tview_t := view``
        entry-wise).  Returns ``self`` when nothing advances."""
        updates = {(tid, x): op for x, op in view.items()}
        tview2 = self.tview.set_many(updates)
        if tview2 is self.tview:
            return self
        new = ComponentState(
            ops=self.ops, tview=tview2, mview=self.mview, cvd=self.cvd
        )
        return new._seed_caches(
            self.index, self.all_ts, self._derived_tvm_cache(tid, view)
        )

    def thread_view_map(self, tid: str) -> View:
        """``tview_t`` as a variable-indexed view map (cached per thread —
        states are immutable, so the map is computed at most once)."""
        cache = self.__dict__.get("_tvm_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_tvm_cache", cache)
        view = cache.get(tid)
        if view is None:
            view = FMap(
                {x: op for (t, x), op in self.tview.items() if t == tid}
            )
            cache[tid] = view
        return view

    def add_op(
        self,
        op: Op,
        mview: View,
        tid: str,
        tview: View,
        cover: Optional[Op] = None,
    ) -> "ComponentState":
        """Insert a new operation with its modification view, replace the
        executing thread's viewfront, and optionally cover an operation.

        The successor's per-variable and timestamp indices are derived
        incrementally: one bisected tuple insert for ``op``'s variable,
        one sorted insert into the timestamp index — no rescan of
        ``ops``.
        """
        new_cvd = self.cvd | {cover} if cover is not None else self.cvd
        updates = {(tid, x): o for x, o in tview.items()}
        new = ComponentState(
            ops=self.ops | {op},
            tview=self.tview.set_many(updates),
            mview=self.mview.set(op, mview),
            cvd=new_cvd,
        )

        var = op.act.var
        index2 = dict(self.index)
        entry = index2.get(var)
        if entry is None:
            index2[var] = ((op,), (op.ts,))
        else:
            seq, ts_seq = entry
            i = bisect_right(ts_seq, op.ts)
            index2[var] = (
                seq[:i] + (op,) + seq[i:],
                ts_seq[:i] + (op.ts,) + ts_seq[i:],
            )
        all_ts2 = list(self.all_ts)
        insort(all_ts2, op.ts)
        return new._seed_caches(
            index2, tuple(all_ts2), self._derived_tvm_cache(tid, tview)
        )

    # -- integrity -----------------------------------------------------------
    def check_invariants(self, tids: Iterable[str]) -> None:
        """Internal coherence: views point into ops, cvd ⊆ ops, per-variable
        timestamps unique, indices consistent with ``ops``.  Used by tests
        and the debugging explorer mode."""
        for (t, x), op in self.tview.items():
            assert op in self.ops, f"tview[{t},{x}] = {op!r} not in ops"
        assert self.cvd <= self.ops, "cvd ⊄ ops"
        for op in self.mview:
            assert op in self.ops, f"mview key {op!r} not in ops"
        seen: dict = {}
        for op in self.ops:
            key = (op.act.var, op.ts)
            assert key not in seen, f"duplicate timestamp for {op.act.var}: {op.ts}"
            seen[key] = op
        # The derived indices must describe exactly ``ops``.
        indexed = [op for seq, _ts in self.index.values() for op in seq]
        assert len(indexed) == len(self.ops) and set(indexed) == set(
            self.ops
        ), "per-variable index out of sync with ops"
        for var, (seq, ts_seq) in self.index.items():
            assert all(op.act.var == var for op in seq), f"foreign op under {var}"
            assert ts_seq == tuple(op.ts for op in seq), f"ts index desync on {var}"
            assert list(ts_seq) == sorted(ts_seq), f"index unsorted on {var}"
        assert self.all_ts == tuple(
            sorted(op.ts for op in self.ops)
        ), "timestamp index out of sync with ops"


def _op_ts(op: Op) -> Fraction:
    return op.ts
