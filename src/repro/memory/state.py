"""Component state ``(ops, tview, mview, cvd)`` (paper §3.3).

Each component (client or library) carries:

* ``ops`` — the set of modifying operations executed so far, each a
  timestamped :class:`~repro.memory.actions.Op`;
* ``tview`` — per-thread viewfronts over the component's variables
  (``tview_t ∈ GVar → ops``); a thread can read any operation on ``x``
  whose timestamp is at least ``tst(tview_t(x))``;
* ``mview`` — per-operation modification views spanning *both*
  components ("the modification view function may map to operations
  across the system");
* ``cvd`` — covered operations: those immediately prior to an update in
  modification order, with which no new operation may interact.

States are immutable; updates return new states sharing unmodified parts.
The successor constructor only copies the maps it touches — this is the
hot path of the explorer (HPC guide: optimise the measured bottleneck,
keep copies off the inner loop where possible).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.memory.actions import Action, Op
from repro.memory.views import View, last_op, max_ts
from repro.util.fmap import FMap


@dataclass(frozen=True)
class ComponentState:
    """The weak-memory state of one component (client γ or library β)."""

    ops: FrozenSet[Op] = frozenset()
    #: tview[(tid, var)] -> Op ; flattened for cheap single-entry updates.
    tview: FMap = field(default_factory=FMap)
    #: mview[op] -> View (var -> Op, spanning both components).
    mview: FMap = field(default_factory=FMap)
    cvd: FrozenSet[Op] = frozenset()

    # -- observation --------------------------------------------------------
    def thread_view(self, tid: str, var: str) -> Optional[Op]:
        """``tview_t(x)`` — this thread's viewfront for ``x`` (None if the
        variable is not part of this component)."""
        return self.tview.get((tid, var))

    def obs(self, tid: str, var: str) -> Tuple[Op, ...]:
        """``Obs(t, x)``: operations on ``x`` observable to ``t``.

        ``{(a, q) ∈ ops | var(a) = x ∧ tst(tview_t(x)) ≤ q}`` — sorted by
        timestamp for deterministic iteration.
        """
        front = self.thread_view(tid, var)
        if front is None:
            return ()
        floor = front.ts
        found = [op for op in self.ops if op.act.var == var and op.ts >= floor]
        found.sort(key=lambda op: op.ts)
        return tuple(found)

    def observable_uncovered(self, tid: str, var: str) -> Tuple[Op, ...]:
        """``Obs(t, x) \\ cvd`` — candidates for write/update placement."""
        return tuple(op for op in self.obs(tid, var) if op not in self.cvd)

    def ops_on(self, var: str) -> Tuple[Op, ...]:
        """All operations on ``var`` (``ops|x``), sorted by timestamp."""
        found = [op for op in self.ops if op.act.var == var]
        found.sort(key=lambda op: op.ts)
        return tuple(found)

    def max_ts(self, var: str) -> Optional[Fraction]:
        """``maxTS(var, σ)``."""
        return max_ts(var, self.ops)

    def last_op(self, var: str, only=None) -> Optional[Op]:
        """``last(W, x)`` over this component's ops."""
        return last_op(var, self.ops, only=only)

    def timestamps(self) -> Tuple[Fraction, ...]:
        """All timestamps in ``ops`` (for freshness computations)."""
        return tuple(op.ts for op in self.ops)

    # -- functional update ---------------------------------------------------
    def with_thread_view(self, tid: str, view: View) -> "ComponentState":
        """Replace the whole viewfront of ``tid`` (``tview_t := view``)."""
        updates = {(tid, x): op for x, op in view.items()}
        return replace(self, tview=self.tview.set_many(updates))

    def thread_view_map(self, tid: str) -> View:
        """``tview_t`` as a variable-indexed view map."""
        return FMap({x: op for (t, x), op in self.tview.items() if t == tid})

    def add_op(
        self,
        op: Op,
        mview: View,
        tid: str,
        tview: View,
        cover: Optional[Op] = None,
    ) -> "ComponentState":
        """Insert a new operation with its modification view, replace the
        executing thread's viewfront, and optionally cover an operation."""
        new_cvd = self.cvd | {cover} if cover is not None else self.cvd
        updates = {(tid, x): o for x, o in tview.items()}
        return ComponentState(
            ops=self.ops | {op},
            tview=self.tview.set_many(updates),
            mview=self.mview.set(op, mview),
            cvd=new_cvd,
        )

    # -- integrity -----------------------------------------------------------
    def check_invariants(self, tids: Iterable[str]) -> None:
        """Internal coherence: views point into ops, cvd ⊆ ops, per-variable
        timestamps unique.  Used by tests and the debugging explorer mode."""
        for (t, x), op in self.tview.items():
            assert op in self.ops, f"tview[{t},{x}] = {op!r} not in ops"
        assert self.cvd <= self.ops, "cvd ⊄ ops"
        for op in self.mview:
            assert op in self.ops, f"mview key {op!r} not in ops"
        seen: dict = {}
        for op in self.ops:
            key = (op.act.var, op.ts)
            assert key not in seen, f"duplicate timestamp for {op.act.var}: {op.ts}"
            seen[key] = op
