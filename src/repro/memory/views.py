"""View functions and the merge operator ``⊗`` (paper §3.3).

A *view* maps global variables (and object names) to operations.  Thread
views (``tview``) are per-component: a client thread view maps client
variables to client operations.  Modification views (``mview``) span the
whole system: the viewfront a write's author had — over *both*
components — at the instant of writing.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional

from repro.memory.actions import Op
from repro.util.fmap import FMap

#: A view: variable/object name → operation.
View = FMap


def merge_views(v1: View, v2: View) -> View:
    """The paper's ``V1 ⊗ V2``.

    Constructs a new view from ``V1`` by taking, for each variable in
    ``dom(V1)``, the later (by timestamp) of ``V1(x)`` and ``V2(x)``.
    Variables absent from ``V2`` keep their ``V1`` entry.
    """
    updates = {}
    for x, op1 in v1.items():
        op2 = v2.get(x)
        if op2 is not None and op2.ts > op1.ts:
            updates[x] = op2
    return v1.set_many(updates) if updates else v1


def view_union(v1: View, v2: View) -> View:
    """Union of views with disjoint domains (``tview' ∪ β.tview_t``).

    Used to build modification views spanning both components.  If a
    variable occurs in both, the later entry wins (which collapses to the
    paper's plain union when domains are disjoint, the only case the rules
    produce).
    """
    merged = dict(v1)
    for x, op in v2.items():
        cur = merged.get(x)
        if cur is None or op.ts > cur.ts:
            merged[x] = op
    return FMap(merged)


def max_ts(var: str, ops: Iterable[Op]) -> Optional[Fraction]:
    """``maxTS(o, σ)``: the maximal timestamp among operations on ``var``.

    Returns ``None`` when no operation on ``var`` exists.
    """
    best: Optional[Fraction] = None
    for op in ops:
        if op.act.var == var and (best is None or op.ts > best):
            best = op.ts
    return best


def last_op(var: str, ops: Iterable[Op], only=None) -> Optional[Op]:
    """``last(W, x)``: the operation on ``var`` with maximal timestamp.

    ``only`` optionally filters the candidate actions (e.g. writes only).
    """
    best: Optional[Op] = None
    for op in ops:
        if op.act.var != var:
            continue
        if only is not None and not only(op.act):
            continue
        if best is None or op.ts > best.ts:
            best = op
    return best
