"""The RC11 RAR memory semantics over client/library state pairs.

This package implements Section 3.3 and Figure 5 of the paper: timestamped
operation sets, per-thread view functions, modification views, covered
writes, and the Read/Write/Update transition rules parameterised by an
executing component ``γ`` and a context component ``β``.
"""

from repro.memory.actions import (
    Action,
    Op,
    is_acquiring,
    is_releasing,
    is_update,
    is_write,
    mk_method,
    mk_read,
    mk_update,
    mk_write,
    wrval,
)
from repro.memory.initial import initial_states
from repro.memory.state import ComponentState
from repro.memory.transitions import read_steps, update_steps, write_steps
from repro.memory.views import max_ts, merge_views, view_union

__all__ = [
    "Action",
    "ComponentState",
    "Op",
    "initial_states",
    "is_acquiring",
    "is_releasing",
    "is_update",
    "is_write",
    "max_ts",
    "merge_views",
    "mk_method",
    "mk_read",
    "mk_update",
    "mk_write",
    "read_steps",
    "update_steps",
    "view_union",
    "write_steps",
    "wrval",
]
