"""Actions and timestamped operations (paper §3.3).

``Act`` contains read, write and update actions over global variables plus
*abstract method actions* over objects (paper §4: "we record abstract
operations in general, as opposed to writes only").  Only modifying
actions — writes, updates, and method operations — enter a component's
``ops`` set; reads occur solely as transition labels.

An operation is an ``(action, timestamp)`` pair (``Op``).  Two dynamic
writes with identical action fields are distinguished by their timestamps,
which are unique per component.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.lang.expr import Value

#: Action kinds.
RD = "rd"  #: relaxed read
RD_A = "rdA"  #: acquiring read
WR = "wr"  #: relaxed write
WR_R = "wrR"  #: releasing write
UPD = "updRA"  #: acquiring-releasing update (CAS success, FAI)
METH = "meth"  #: abstract method operation


@dataclass(frozen=True)
class Action:
    """A memory or method action.

    Fields beyond ``kind``/``var``/``tid`` are kind-specific:

    * reads: ``val`` is the value read;
    * writes: ``val`` is the value written;
    * updates: ``rdval`` is the value read, ``val`` the value written;
    * method actions: ``method`` is the method name, ``val`` an optional
      argument/element value, ``index`` the per-object operation index
      (the lock's "version"), ``sync`` whether the action synchronises
      (membership of the paper's ``Sync`` set).

    Actions are immutable and hashed constantly (state sets, rank
    tables, canonical keys), so the hash is computed once and cached.
    The cache never crosses a pickle boundary: string hashing is
    per-process (``PYTHONHASHSEED``), and the sharded explorer ships
    configurations between processes.
    """

    kind: str
    var: str
    tid: Optional[str] = None
    val: Value = None
    rdval: Value = None
    method: Optional[str] = None
    index: Optional[int] = None
    sync: bool = False

    def __hash__(self) -> int:
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash(
                (
                    self.kind,
                    self.var,
                    self.tid,
                    self.val,
                    self.rdval,
                    self.method,
                    self.index,
                    self.sync,
                )
            )
            object.__setattr__(self, "_hash", h)
        return h

    def __reduce__(self):
        """Compact positional encoding with trailing defaults omitted
        and decode-side interning (:mod:`repro.memory.codec`).  The
        cached hash is dropped across the pickle boundary as before."""
        from repro.memory.codec import reduce_action

        return reduce_action(self)

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state) -> None:
        for k, v in state.items():
            object.__setattr__(self, k, v)

    def __repr__(self) -> str:  # compact, used in counterexample dumps
        if self.kind == METH:
            arg = "" if self.val is None else repr(self.val)
            idx = "" if self.index is None else f"_{self.index}"
            t = "" if self.tid is None else f"@{self.tid}"
            return f"{self.var}.{self.method}{idx}({arg}){t}"
        t = "" if self.tid is None else f"@{self.tid}"
        if self.kind in (RD, RD_A):
            return f"{self.kind}({self.var},{self.val!r}){t}"
        if self.kind in (WR, WR_R):
            return f"{self.kind}({self.var},{self.val!r}){t}"
        return f"{self.kind}({self.var},{self.rdval!r}->{self.val!r}){t}"


class Op:
    """A timestamped operation ``(a, q) ∈ Act × Q``.

    Value-equal by ``(act, ts)``.  Operations are interned throughout the
    state model (``ops`` sets, view maps, rank tables), so the hash —
    which reaches a :class:`~fractions.Fraction` modular inverse — is
    computed once per operation and cached.  Like :class:`Action`, the
    cached hash is dropped on pickling (it is process-specific).
    """

    __slots__ = ("act", "ts", "_hash")

    def __init__(self, act: Action, ts: Fraction) -> None:
        self.act = act
        self.ts = ts
        self._hash: Optional[int] = None

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash((self.act, self.ts))
        return h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Op):
            return self.ts == other.ts and self.act == other.act
        return NotImplemented

    def __reduce__(self):
        """Numeric-pair timestamp encoding with decode-side interning
        (:mod:`repro.memory.codec`); the cached hash never crosses."""
        from repro.memory.codec import reduce_op

        return reduce_op(self)

    def __getstate__(self):
        return (self.act, self.ts)

    def __setstate__(self, state) -> None:
        self.act, self.ts = state
        self._hash = None

    def __repr__(self) -> str:
        return f"⟨{self.act!r}@{self.ts}⟩"


# -- constructors ----------------------------------------------------------


def mk_read(var: str, val: Value, tid: str, acquire: bool = False) -> Action:
    """A read action ``rd[A](x, v)``."""
    return Action(kind=RD_A if acquire else RD, var=var, tid=tid, val=val)


def mk_write(var: str, val: Value, tid: str, release: bool = False) -> Action:
    """A write action ``wr[R](x, v)``."""
    return Action(kind=WR_R if release else WR, var=var, tid=tid, val=val)


def mk_update(var: str, rdval: Value, val: Value, tid: str) -> Action:
    """An update action ``updRA(x, m, n)`` reading ``m`` and writing ``n``."""
    return Action(kind=UPD, var=var, tid=tid, val=val, rdval=rdval)


def mk_method(
    obj: str,
    method: str,
    tid: Optional[str] = None,
    val: Value = None,
    index: Optional[int] = None,
    sync: bool = False,
) -> Action:
    """An abstract method operation ``o.m_n`` (paper §4)."""
    return Action(
        kind=METH, var=obj, tid=tid, val=val, method=method, index=index, sync=sync
    )


# -- classification --------------------------------------------------------


def is_write(a: Action) -> bool:
    """Membership of the paper's ``W`` (all modifying variable actions).

    Method operations are modifying but are not *writes*: the definite
    observation assertion restricts to ``ops ∩ W`` for variables and has a
    separate object-level form.
    """
    return a.kind in (WR, WR_R, UPD)


def is_modifying(a: Action) -> bool:
    """Actions that enter ``ops``: writes, updates and method operations."""
    return a.kind in (WR, WR_R, UPD, METH)


def is_update(a: Action) -> bool:
    """Whether the action is an acquiring-releasing update (``updRA``)."""
    return a.kind == UPD


def is_releasing(a: Action) -> bool:
    """Membership of ``WR`` — releasing writes: ``wrR``, ``updRA``, and
    synchronising method operations (the lock's release, a releasing push).
    """
    if a.kind in (WR_R, UPD):
        return True
    return a.kind == METH and a.sync


def is_acquiring(a: Action) -> bool:
    """Membership of ``RA`` — acquiring reads: ``rdA``, ``updRA``."""
    return a.kind in (RD_A, UPD)


def is_method(a: Action) -> bool:
    """Whether the action is an abstract method operation."""
    return a.kind == METH


def wrval(a: Action) -> Value:
    """The value written by a modifying action (``wrval`` in the paper)."""
    if a.kind in (WR, WR_R, UPD):
        return a.val
    if a.kind == METH:
        return a.val
    raise ValueError(f"action writes no value: {a!r}")


def rdval(a: Action) -> Value:
    """The value read by a read or update action."""
    if a.kind in (RD, RD_A):
        return a.val
    if a.kind == UPD:
        return a.rdval
    raise ValueError(f"action reads no value: {a!r}")
