"""Compact on-wire codec for configurations crossing process boundaries.

The sharded exploration backends ship configurations between processes
as pickled blobs, and on a large state space those blobs *are* the
inter-process traffic: every byte is encoded once by the discovering
worker and decoded once by the owning worker.  Python's default
dataclass pickling is wasteful for this workload — each
:class:`~repro.memory.actions.Action` travels as an 8-entry ``__dict__``
(key strings and default-valued fields included), each timestamp as a
``Fraction`` class reference plus a decimal string — so the semantic
value classes define ``__reduce__`` in terms of the reconstructors in
this module:

* **positional encoding** — an object is reduced to ``(reconstructor,
  field values)``, no attribute-name keys and no state dict;
* **trailing-default truncation** — an ``Action``'s unset kind-specific
  fields (``rdval``/``method``/``index``/``sync`` for a plain write, …)
  are simply omitted and restored from the dataclass defaults;
* **numeric timestamps** — an :class:`~repro.memory.actions.Op` carries
  its timestamp as a ``(numerator, denominator)`` integer pair instead
  of a pickled ``Fraction``;
* **decode-side interning** — the reconstructors intern repeated
  actions and timestamps in per-process tables, so the configurations a
  worker decodes share one object per distinct action/timestamp.
  Beyond memory, interning restores the *identity* sharing that makes
  pickle's memoisation effective when the worker re-encodes successor
  states, and it lets the cached ``Action``/``Op`` hashes be computed
  once per distinct value rather than once per decoded occurrence.

The format changes how objects are written, not what they mean: a
round-trip is value-identical (bit-identical canonical keys — property-
tested), and blobs written by the pre-codec format still load, because
the classes retain their ``__getstate__``/``__setstate__`` methods.
:func:`legacy_dumps` keeps that pre-codec wire format callable — it is
the reference the codec's size ratio is benchmarked against
(``benchmarks/test_bench_parallel_pipeline.py``).

For the shared-memory transport (:mod:`repro.engine.shm`) the module
additionally exposes a *buffer-direct* form of the same wire format:
:func:`encode_batch_into` streams the pickle straight into a caller-
provided ``memoryview`` (ring-buffer memory) so a cross-shard batch is
serialised without ever materialising an intermediate ``bytes`` blob,
and :func:`decode_batch_from` deserialises from a buffer without
copying it out first.  Both raise/return through :class:`BufferFull`
when the batch does not fit — the caller falls back to chunked frames.
"""

from __future__ import annotations

import io
import pickle
from fractions import Fraction
from itertools import islice
from typing import Tuple

from repro.memory.actions import Action, Op
from repro.memory.state import ComponentState
from repro.semantics.config import Config
from repro.util.fmap import FMap

#: Per-process intern tables (decode side).  Bounded by half-eviction
#: (see :func:`_evict_half`) — the distinct-value populations (action
#: field tuples, timestamp rationals) grow with the program, not the
#: state count, so the caps exist only as a backstop against
#: pathological workloads (very long multi-program batch runs).
_ACTIONS: dict = {}
_TIMESTAMPS: dict = {}
_INTERN_MAX = 1 << 20


def _evict_half(table: dict) -> None:
    """Drop the oldest-inserted half of an intern table.

    Same discipline as the fingerprint module's ``_SUB_DIGESTS`` memo:
    dicts preserve insertion order, and the live working set — the
    actions/timestamps of the *current* program's batches — is by
    construction the recently inserted half, so a long run sheds dead
    entries from earlier programs without ever dropping (and re-building,
    losing the identity sharing of) the entries it is actively using,
    which a full ``clear()`` forced.
    """
    drop = len(table) // 2
    for key in list(islice(table, drop)):
        del table[key]

#: ``Action`` dataclass defaults, positionally aligned with its fields
#: ``(kind, var, tid, val, rdval, method, index, sync)``.  ``kind`` and
#: ``var`` have no defaults and are always encoded.
_ACTION_DEFAULTS = (None, None, None, None, None, None, None, False)


def clear_intern_tables() -> None:
    """Drop both intern tables (test isolation / memory pressure)."""
    _ACTIONS.clear()
    _TIMESTAMPS.clear()


# -- reduce (encode side) ---------------------------------------------------


def reduce_action(act: Action) -> Tuple:
    """``Action`` → ``(_act, non-default field prefix)``."""
    args = (
        act.kind, act.var, act.tid, act.val, act.rdval, act.method,
        act.index, act.sync,
    )
    n = 8
    while n > 2 and args[n - 1] == _ACTION_DEFAULTS[n - 1]:
        n -= 1
    return (_act, args[:n])


def reduce_op(op: Op) -> Tuple:
    """``Op`` → ``(_op, (action, ts numerator, ts denominator))``."""
    ts = op.ts
    return (_op, (op.act, ts.numerator, ts.denominator))


def reduce_component_state(state: ComponentState) -> Tuple:
    """``ComponentState`` → its four defining fields, positionally.

    Derived data (indices, view-map caches) is never encoded — exactly
    the fields ``__getstate__`` kept.  Subclasses (the naive reference
    state) carry their class so they decode as themselves.
    """
    cls = type(state)
    if cls is ComponentState:
        return (_cstate, (state.ops, state.tview, state.mview, state.cvd))
    return (
        _cstate_of, (cls, state.ops, state.tview, state.mview, state.cvd)
    )


def reduce_config(cfg: Config) -> Tuple:
    """``Config`` → ``(P, ls, γ, β)`` positionally, dropping any cached
    canonical data (process-specific derived state)."""
    return (_config, (cfg.cmds, cfg.locals, cfg.gamma, cfg.beta))


# -- reconstructors (decode side) -------------------------------------------


def _act(*args) -> Action:
    """Rebuild (and intern) an ``Action`` from its non-default prefix."""
    try:
        cached = _ACTIONS.get(args)
    except TypeError:  # unhashable value field: rebuild without interning
        return Action(*args)
    if cached is None:
        if len(_ACTIONS) >= _INTERN_MAX:
            _evict_half(_ACTIONS)
        cached = _ACTIONS[args] = Action(*args)
    return cached


def _op(act: Action, num: int, den: int) -> Op:
    """Rebuild an ``Op``, interning its timestamp rational."""
    key = (num, den)
    ts = _TIMESTAMPS.get(key)
    if ts is None:
        if len(_TIMESTAMPS) >= _INTERN_MAX:
            _evict_half(_TIMESTAMPS)
        ts = _TIMESTAMPS[key] = Fraction(num, den)
    return Op(act, ts)


def _cstate(ops, tview, mview, cvd) -> ComponentState:
    return ComponentState(ops=ops, tview=tview, mview=mview, cvd=cvd)


def _cstate_of(cls, ops, tview, mview, cvd) -> ComponentState:
    return cls(ops=ops, tview=tview, mview=mview, cvd=cvd)


def _config(cmds, locals_, gamma, beta) -> Config:
    return Config(cmds=cmds, locals=locals_, gamma=gamma, beta=beta)


# -- blob helpers -----------------------------------------------------------


def config_blob(cfg: Config) -> bytes:
    """Encode one configuration with the compact codec (the exact bytes
    the sharded backends put on the wire)."""
    return pickle.dumps(cfg, pickle.HIGHEST_PROTOCOL)


def load_blob(blob: bytes) -> Config:
    """Decode a configuration blob (either wire format)."""
    return pickle.loads(blob)


# -- buffer-direct batch form (shared-memory transport) ---------------------


class BufferFull(Exception):
    """Raised by :func:`encode_batch_into` when the batch's encoding
    does not fit in the buffer the caller provided."""


class _ViewWriter:
    """Minimal write-only file object over a fixed ``memoryview``.

    ``pickle.Pickler`` needs only ``write``; each call lands the chunk
    directly in the target buffer (ring memory), raising
    :class:`BufferFull` the moment the encoding would overrun it.
    """

    __slots__ = ("_buf", "pos")

    def __init__(self, buf: memoryview):
        self._buf = buf
        self.pos = 0

    def write(self, data) -> int:
        n = len(data)
        end = self.pos + n
        if end > len(self._buf):
            raise BufferFull(end)
        self._buf[self.pos:end] = data
        self.pos = end
        return n


def encode_batch_into(batch, buf: memoryview) -> int:
    """Encode a cross-shard batch straight into ``buf``; return the
    number of bytes written.

    This is the same compact wire format as ``pickle.dumps(batch,
    HIGHEST_PROTOCOL)`` — the pickler picks up the value classes'
    ``__reduce__`` methods — but streamed through a writer over the
    caller's buffer, so no intermediate ``bytes`` object is ever
    built.  Raises :class:`BufferFull` (buffer unmodified in any way
    the caller observes — the write position is discarded) when the
    encoding exceeds ``len(buf)``.
    """
    writer = _ViewWriter(buf)
    pickle.Pickler(writer, pickle.HIGHEST_PROTOCOL).dump(batch)
    return writer.pos


def decode_batch_from(buf) -> list:
    """Decode a batch from a buffer (``memoryview``/``bytes``) without
    requiring the caller to copy it out first.

    Delegates to the wire-format dispatcher in
    :mod:`repro.memory.flatcodec` (lazy import — flatcodec imports this
    module), so the receive side is codec-agnostic: flat v2 frames,
    v1/fallback pickle blobs and garbage all go through the same typed
    error handling (:class:`~repro.memory.flatcodec.CodecError`).
    """
    from repro.memory.flatcodec import decode_batch

    return decode_batch(buf)


# -- pre-codec reference format ---------------------------------------------


def _legacy_new(cls):
    return cls.__new__(cls)


class _LegacyPickler(pickle.Pickler):
    """The pre-codec wire format: class + ``__getstate__`` state.

    ``reducer_override`` takes priority over the classes' ``__reduce__``
    methods, so this pickler reproduces how the semantic value classes
    serialised before the codec existed — dict-shaped state with
    attribute-name keys, all eight ``Action`` fields, ``Fraction``
    timestamps.  Kept as the measured reference for the codec's
    size/time benchmark, not used by any backend.
    """

    def reducer_override(self, obj):
        if isinstance(obj, (Action, ComponentState, Config, Op, FMap)):
            return (_legacy_new, (type(obj),), obj.__getstate__())
        return NotImplemented


def legacy_dumps(obj) -> bytes:
    """Pickle ``obj`` in the pre-codec reference format."""
    buf = io.BytesIO()
    _LegacyPickler(buf, pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()
