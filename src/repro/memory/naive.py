"""The naive (un-indexed) reference component state.

:class:`~repro.memory.state.ComponentState` answers every observation
query through an incrementally-maintained per-variable index.  This
module retains the original *specification-shaped* implementation — full
``ops``-set scans and re-sorts per query, whole-component timestamp
scans for freshness, per-call thread-view-map rebuilds, rank maps
rebuilt per canonical encoding — as an executable reference:

* the differential property suite drives the real transition rules over
  both representations and asserts identical canonical keys and
  successor sets (the indexed state is observationally equal to the
  naive one);
* ``benchmarks/test_bench_state_index.py`` measures the speedup the
  index buys on real exploration workloads.

Naive states are real :class:`ComponentState` instances (the transition
rules and abstract objects work on them unchanged through the shared
method protocol); only the derived-data machinery is overridden, so the
numeric timestamps — and hence the raw configurations — produced through
either representation are bit-identical.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.lang.program import Program
from repro.memory.actions import Op
from repro.memory.state import ComponentState
from repro.memory.views import View
from repro.memory.views import last_op as _scan_last_op
from repro.memory.views import max_ts as _scan_max_ts
from repro.semantics.config import Config, initial_config
from repro.util.fmap import FMap
from repro.util.rationals import fresh_after, rank_map


class NaiveComponentState(ComponentState):
    """Reference implementation: every query scans the flat ``ops`` set."""

    def obs(self, tid: str, var: str) -> Tuple[Op, ...]:
        front = self.tview.get((tid, var))
        if front is None:
            return ()
        floor = front.ts
        found = [op for op in self.ops if op.act.var == var and op.ts >= floor]
        found.sort(key=lambda op: op.ts)
        return tuple(found)

    def observable_uncovered(self, tid: str, var: str) -> Tuple[Op, ...]:
        return tuple(op for op in self.obs(tid, var) if op not in self.cvd)

    def ops_on(self, var: str) -> Tuple[Op, ...]:
        found = [op for op in self.ops if op.act.var == var]
        found.sort(key=lambda op: op.ts)
        return tuple(found)

    def max_ts(self, var: str) -> Optional[Fraction]:
        return _scan_max_ts(var, self.ops)

    def last_op(self, var: str, only=None) -> Optional[Op]:
        return _scan_last_op(var, self.ops, only=only)

    def timestamps(self) -> Tuple[Fraction, ...]:
        return tuple(op.ts for op in self.ops)

    def fresh_ts(self, var: str, q: Fraction) -> Fraction:
        return fresh_after(q, self.timestamps())

    def thread_view_map(self, tid: str) -> View:
        # Rebuilt on every call — the per-(state, tid) cache is part of
        # what the benchmark measures.
        return FMap({x: op for (t, x), op in self.tview.items() if t == tid})

    def with_thread_view(self, tid: str, view: View) -> "NaiveComponentState":
        updates = {(tid, x): op for x, op in view.items()}
        return NaiveComponentState(
            ops=self.ops,
            tview=self.tview.set_many(updates),
            mview=self.mview,
            cvd=self.cvd,
        )

    def add_op(
        self,
        op: Op,
        mview: View,
        tid: str,
        tview: View,
        cover: Optional[Op] = None,
    ) -> "NaiveComponentState":
        new_cvd = self.cvd | {cover} if cover is not None else self.cvd
        updates = {(tid, x): o for x, o in tview.items()}
        return NaiveComponentState(
            ops=self.ops | {op},
            tview=self.tview.set_many(updates),
            mview=self.mview.set(op, mview),
            cvd=new_cvd,
        )


def as_naive(state: ComponentState) -> NaiveComponentState:
    """Re-wrap a component state in the naive representation."""
    return NaiveComponentState(
        ops=state.ops, tview=state.tview, mview=state.mview, cvd=state.cvd
    )


def naive_config(cfg: Config) -> Config:
    """A configuration whose components use the naive representation."""
    return Config(
        cmds=cfg.cmds,
        locals=cfg.locals,
        gamma=as_naive(cfg.gamma),
        beta=as_naive(cfg.beta),
    )


def naive_initial_config(program: Program) -> Config:
    """``Π_Init`` with naive component states."""
    return naive_config(initial_config(program))


# ---------------------------------------------------------------------------
# the original canonical encoding (rank maps rebuilt per state, ``repr``
# lexicographic tie-breaks) — retained for the benchmark's naive leg
# ---------------------------------------------------------------------------


def _var_ranks(state: ComponentState) -> Dict:
    """rank maps per variable: var -> {ts -> rank} (full ``ops`` scan)."""
    by_var: Dict = {}
    for op in state.ops:
        by_var.setdefault(op.act.var, []).append(op.ts)
    return {var: rank_map(ts_list) for var, ts_list in by_var.items()}


def naive_canonical_key(program: Program, cfg: Config) -> Tuple:
    """The pre-index canonical key: rebuilds per-variable rank maps and
    sorts modification views by ``repr``.  Equivalent to
    :func:`repro.semantics.canon.canonical_key` as a state identifier
    (same quotient), byte-different in encoding."""
    g_ranks = _var_ranks(cfg.gamma)
    b_ranks = _var_ranks(cfg.beta)
    client_vars = program.client_var_names

    def enc_op(op: Op) -> Tuple:
        ranks = g_ranks if op.act.var in client_vars else b_ranks
        return (op.act, ranks[op.act.var][op.ts])

    def enc_state(state: ComponentState) -> Tuple:
        ops = frozenset(enc_op(op) for op in state.ops)
        tview = tuple(
            sorted((key, enc_op(op)) for key, op in state.tview.items())
        )
        mview = tuple(
            sorted(
                (
                    (
                        enc_op(op),
                        tuple(sorted((x, enc_op(o)) for x, o in view.items())),
                    )
                    for op, view in state.mview.items()
                ),
                key=repr,
            )
        )
        cvd = frozenset(enc_op(op) for op in state.cvd)
        return (ops, tview, mview, cvd)

    cmds = tuple(sorted(cfg.cmds.items(), key=lambda kv: kv[0]))
    locals_ = tuple(
        sorted((tid, ls.items_sorted()) for tid, ls in cfg.locals.items())
    )
    return (cmds, locals_, enc_state(cfg.gamma), enc_state(cfg.beta))


def explore_naive(
    program: Program, max_states: int = 500_000
) -> Tuple[int, int, set]:
    """BFS over the canonical state space through the naive state
    representation and the pre-index canonical encoding.

    Returns ``(state_count, edge_count, terminal_cmd-free_locals)`` —
    the observables the differential benchmark compares against the
    indexed explorer.  Deliberately mirrors the engine's sequential loop
    so timing differences isolate the state representation.
    """
    from repro.semantics.step import successors

    init = naive_initial_config(program)
    init_key = naive_canonical_key(program, init)
    seen = {init_key}
    frontier = deque([init])
    states = 1
    edges = 0
    terminals = set()
    while frontier:
        cfg = frontier.popleft()
        succs = successors(program, cfg)
        if not succs:
            if cfg.is_terminal():
                terminals.add(
                    tuple(
                        (tid, cfg.locals[tid].items_sorted())
                        for tid in sorted(cfg.locals)
                    )
                )
            continue
        for tr in succs:
            edges += 1
            tkey = naive_canonical_key(program, tr.target)
            if tkey not in seen:
                if states >= max_states:
                    continue
                seen.add(tkey)
                states += 1
                frontier.append(tr.target)
    return states, edges, terminals
