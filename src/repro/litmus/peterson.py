"""Peterson's mutual-exclusion algorithm under RC11 RAR.

Peterson's algorithm is correct under sequential consistency but
**broken** under release/acquire: its entry protocol embeds a
store-buffering shape (write own flag, read the other's), and RC11 RAR
has no SC fences to order them — both threads can read the other's
stale flag and enter together.  This module builds the algorithm with
the strongest annotations the RAR fragment offers and exposes the
violation as a reachable configuration, demonstrating the framework as
a *bug finder*, not only a proof checker.
"""

from __future__ import annotations

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread


def peterson_program() -> Program:
    """Two-thread Peterson with release writes and acquire reads.

    Labels: 1 = entry protocol, 2 = critical section (sets ``in_t``
    then clears it), 3 = exit.  ``in1``/``in2`` witness CS occupancy.
    """

    def thread(me: str, other: str, my_flag: str, other_flag: str, my_turn: int):
        wait = A.do_until(
            A.seq(
                A.Read("f", other_flag, acquire=True),
                A.Read("t", "turn", acquire=True),
            ),
            Reg("f").eq(0).or_(Reg("t").ne(my_turn)),
        )
        return A.seq(
            A.Labeled(
                1,
                A.seq(
                    A.Write(my_flag, Lit(1), release=True),
                    A.Write("turn", Lit(my_turn), release=True),
                    wait,
                ),
            ),
            A.Labeled(
                2,
                A.seq(
                    A.Write(f"in{me}", Lit(1), release=True),
                    A.Read("peek", f"in{other}", acquire=True),
                    A.Write(f"in{me}", Lit(0), release=True),
                ),
            ),
            A.Labeled(3, A.Write(my_flag, Lit(0), release=True)),
        )

    return Program(
        threads={
            "1": Thread(thread("1", "2", "flag1", "flag2", 2), done_label=4),
            "2": Thread(thread("2", "1", "flag2", "flag1", 1), done_label=4),
        },
        client_vars={
            "flag1": 0,
            "flag2": 0,
            "turn": 0,
            "in1": 0,
            "in2": 0,
        },
    )


def mutual_exclusion_violated(cfg, program) -> bool:
    """Both threads simultaneously inside their critical sections
    (both program counters in the label-2 region)."""
    return cfg.pc("1", program) == 2 and cfg.pc("2", program) == 2
