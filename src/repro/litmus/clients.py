"""Parameterised client program families.

These clients serve three purposes:

* state universes for the Lemma 3 rule checks (every canonical
  configuration reachable from them);
* the client battery for contextual-refinement checking (Definitions
  6–7 quantify over clients; we check a representative finite family);
* workloads for the scaling ablation benchmarks.

Each builder accepts a ``fill`` callback mapping an abstract call
description to a command, so the *same* client can be instantiated with
the abstract lock (``C[AO]``) or a concrete implementation (``C[CO]``) —
the paper's programs-with-holes, resolved at build time.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread

#: fill(obj, method, dest) -> command filling one hole.
Fill = Callable[[str, str, Optional[str]], A.Node]


def abstract_fill(obj_factory: Callable[[], object]) -> tuple:
    """A ``(fill, objects)`` pair using abstract method calls."""
    obj = obj_factory()

    def fill(name: str, method: str, dest: Optional[str] = None) -> A.Node:
        return A.MethodCall(name, method, dest=dest)

    return fill, (obj,)


def lock_client(
    fill: Fill,
    objects: Sequence[object] = (),
    lib_vars: Optional[dict] = None,
    values: Sequence[int] = (5, 7),
    readers: bool = True,
) -> Program:
    """Two threads, each taking the lock around a write/read critical
    section over shared client data — the Figure 7 shape.

    Thread 1 writes ``values[0]`` to ``x`` under the lock; thread 2
    either (``readers=True``) reads ``x`` twice under the lock, or writes
    ``values[1]``.
    """
    t1 = A.seq(
        A.Labeled(1, fill("l", "acquire", None)),
        A.Labeled(2, A.Write("x", Lit(values[0]))),
        A.Labeled(3, fill("l", "release", None)),
    )
    if readers:
        body2 = A.seq(
            A.Labeled(1, fill("l", "acquire", None)),
            A.Labeled(2, A.Read("a", "x")),
            A.Labeled(3, A.Read("b", "x")),
            A.Labeled(4, fill("l", "release", None)),
        )
    else:
        body2 = A.seq(
            A.Labeled(1, fill("l", "acquire", None)),
            A.Labeled(2, A.Write("x", Lit(values[1]))),
            A.Labeled(3, fill("l", "release", None)),
        )
    return Program(
        threads={"1": Thread(t1), "2": Thread(body2)},
        client_vars={"x": 0},
        lib_vars=dict(lib_vars or {}),
        objects=tuple(objects),
    )


def lock_client_one_sided(
    fill: Fill,
    objects: Sequence[object] = (),
    lib_vars: Optional[dict] = None,
) -> Program:
    """Thread 1 publishes under the lock; thread 2 reads *without* taking
    the lock (exercises states where definite observations are *not*
    transferred — needed to make rules like Lemma 3(4) non-vacuous)."""
    t1 = A.seq(
        A.Labeled(1, fill("l", "acquire", None)),
        A.Labeled(2, A.Write("x", Lit(5))),
        A.Labeled(3, fill("l", "release", None)),
    )
    t2 = A.seq(
        A.Labeled(1, A.Read("a", "x")),
        A.Labeled(2, A.Write("y", Lit(1))),
    )
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0, "y": 0},
        lib_vars=dict(lib_vars or {}),
        objects=tuple(objects),
    )


def lock_client_three_threads(
    fill: Fill,
    objects: Sequence[object] = (),
    lib_vars: Optional[dict] = None,
) -> Program:
    """Three contending threads (scaling workload; deeper version indices)."""
    def cs(k: int) -> A.Node:
        return A.seq(
            A.Labeled(1, fill("l", "acquire", None)),
            A.Labeled(2, A.Write("x", Lit(k))),
            A.Labeled(3, fill("l", "release", None)),
        )

    return Program(
        threads={"1": Thread(cs(1)), "2": Thread(cs(2)), "3": Thread(cs(3))},
        client_vars={"x": 0},
        lib_vars=dict(lib_vars or {}),
        objects=tuple(objects),
    )


def mp_client(
    fill: Fill,
    objects: Sequence[object] = (),
    lib_vars: Optional[dict] = None,
    sync: bool = True,
) -> Program:
    """The Figure 1/2 message-passing client over a stack object."""
    push = "pushR" if sync else "push"
    pop = "popA" if sync else "pop"
    t1 = A.seq(
        A.Labeled(1, A.Write("d", Lit(5))),
        A.Labeled(2, fill_arg(fill, "s", push, Lit(1))),
    )
    t2 = A.seq(
        A.Labeled(3, A.do_until(fill("s", pop, "r1"), Reg("r1").eq(1))),
        A.Labeled(4, A.Read("r2", "d")),
    )
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"d": 0},
        lib_vars=dict(lib_vars or {}),
        objects=tuple(objects),
    )


def fill_arg(fill: Fill, obj: str, method: str, arg) -> A.Node:
    """Fill a hole whose method takes an argument.

    The generic :data:`Fill` signature covers argument-less calls; for
    calls with arguments the abstract fill is built directly here (the
    concrete stack implementations provide their own specialised fills).
    """
    node = fill(obj, method, None)
    if isinstance(node, A.MethodCall):
        return A.MethodCall(node.obj, node.method, arg=arg, dest=node.dest)
    return node
