"""Litmus tests and client program families.

``catalog`` contains the standard weak-memory litmus tests with their
RC11 RAR verdicts, used to validate the Figure 5 transition rules.
``clients`` builds the parameterised lock-client programs used as state
universes for Lemma 3 and as the client battery for refinement checking.
"""

from repro.litmus.catalog import LITMUS_TESTS, LitmusTest, run_litmus
from repro.litmus.clients import (
    lock_client,
    lock_client_one_sided,
    lock_client_three_threads,
    mp_client,
)

__all__ = [
    "LITMUS_TESTS",
    "LitmusTest",
    "lock_client",
    "lock_client_one_sided",
    "lock_client_three_threads",
    "mp_client",
    "run_litmus",
]
