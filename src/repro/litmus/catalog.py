"""Standard weak-memory litmus tests under RC11 RAR (validates Figure 5).

Each test records the outcomes RC11 RAR *allows* for a designated tuple
of registers, split into the interesting ``weak`` outcome(s) and the
expected full outcome set.  The verdicts follow the RC11 literature
[Lahav et al. PLDI'17; Doherty et al. PPoPP'19] for the
relaxed/release/acquire fragment:

* **MP** (message passing), relaxed: stale read allowed; with
  release/acquire: forbidden.
* **SB** (store buffering): the both-read-zero outcome is allowed even
  with release/acquire annotations (forbidding it needs SC fences, which
  RC11 RAR lacks).
* **LB** (load buffering): forbidden outright — RC11 RAR disallows
  load-buffering cycles, and a view-based operational semantics cannot
  produce them (reads read existing writes).
* **CoRR/CoWW/CoRW** coherence shapes: forbidden.
* **IRIW**: the divergent-observation outcome is allowed even under
  release/acquire.
* **2+2W**: both-variables-end-with-first-write allowed under relaxed
  and release/acquire.
* **CAS/FAI atomicity**: two competing RMWs never both succeed against
  the same write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.engine.core import ExplorationEngine
from repro.engine.result import summarise
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread


@dataclass(frozen=True)
class LitmusTest:
    """One litmus test: a program, observed registers, and verdicts."""

    name: str
    build: Callable[[], Program]
    regs: Tuple[Tuple[str, str], ...]
    allowed: FrozenSet[Tuple]  # exactly the expected outcome set
    weak: FrozenSet[Tuple]  # the outcomes distinguishing weak memory
    weak_allowed: bool  # does RC11 RAR allow the weak outcome(s)?
    description: str = ""


def run_litmus(
    test: LitmusTest,
    max_states: int = 500_000,
    engine: Optional[ExplorationEngine] = None,
    use_cache: bool = False,
) -> Dict:
    """Execute a litmus test exhaustively; return verdicts and outcomes.

    With the default arguments this is one sequential in-process
    exploration.  Pass an :class:`~repro.engine.core.ExplorationEngine`
    to pick strategy/workers, and/or ``use_cache=True`` to serve
    repeated runs from the engine's persistent result cache (the CLI's
    default engine is used when caching is requested without an engine).
    """
    if engine is None:
        if use_cache:
            from repro.engine import default_engine

            engine = default_engine()
        else:
            engine = ExplorationEngine()
    if use_cache and engine.cache is not None:
        summary = engine.run(test.build(), max_states=max_states)
    else:
        summary = summarise(engine.explore(test.build(), max_states=max_states))
    outcomes = summary.terminal_locals(*test.regs)
    weak_observed = bool(outcomes & test.weak)
    return {
        "name": test.name,
        "outcomes": outcomes,
        "expected": test.allowed,
        "matches_expected": outcomes == set(test.allowed),
        "weak_observed": weak_observed,
        "weak_allowed": test.weak_allowed,
        "verdict_ok": weak_observed == test.weak_allowed
        and outcomes == set(test.allowed),
        "states": summary.state_count,
        "cached": summary.cached,
    }


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------


def _mp(release: bool, acquire: bool) -> Program:
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(1), release=release))
    t2 = A.seq(A.Read("r1", "f", acquire=acquire), A.Read("r2", "d"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"d": 0, "f": 0},
    )


def _sb(release: bool, acquire: bool) -> Program:
    t1 = A.seq(A.Write("x", Lit(1), release=release), A.Read("r1", "y", acquire=acquire))
    t2 = A.seq(A.Write("y", Lit(1), release=release), A.Read("r2", "x", acquire=acquire))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0, "y": 0},
    )


def _lb() -> Program:
    t1 = A.seq(A.Read("r1", "x"), A.Write("y", Lit(1)))
    t2 = A.seq(A.Read("r2", "y"), A.Write("x", Lit(1)))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0, "y": 0},
    )


def _corr() -> Program:
    t1 = A.Write("x", Lit(1))
    t2 = A.seq(A.Read("r1", "x"), A.Read("r2", "x"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


def _coww() -> Program:
    # Same thread writes 1 then 2; a reader that sees 2 then reads again
    # must not see 1 (coherence of a single thread's writes).
    t1 = A.seq(A.Write("x", Lit(1)), A.Write("x", Lit(2)))
    t2 = A.seq(A.Read("r1", "x"), A.Read("r2", "x"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


def _iriw(release: bool, acquire: bool) -> Program:
    t1 = A.Write("x", Lit(1), release=release)
    t2 = A.Write("y", Lit(1), release=release)
    t3 = A.seq(A.Read("a", "x", acquire=acquire), A.Read("b", "y", acquire=acquire))
    t4 = A.seq(A.Read("c", "y", acquire=acquire), A.Read("d", "x", acquire=acquire))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2), "3": Thread(t3), "4": Thread(t4)},
        client_vars={"x": 0, "y": 0},
    )


def _two_plus_two_w() -> Program:
    t1 = A.seq(A.Write("x", Lit(1), release=True), A.Write("y", Lit(2), release=True))
    t2 = A.seq(A.Write("y", Lit(1), release=True), A.Write("x", Lit(2), release=True))
    t3 = A.seq(A.Read("r1", "x", acquire=True), A.Read("r2", "y", acquire=True))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2), "3": Thread(t3)},
        client_vars={"x": 0, "y": 0},
    )


def _wrc(ra: bool) -> Program:
    # Write-to-read causality: does observing a write transfer the
    # writer's *reads*' causes?
    t1 = A.Write("x", Lit(1), release=ra)
    t2 = A.seq(
        A.Read("r1", "x", acquire=ra), A.Write("y", Lit(1), release=ra)
    )
    t3 = A.seq(A.Read("r2", "y", acquire=ra), A.Read("r3", "x", acquire=ra))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2), "3": Thread(t3)},
        client_vars={"x": 0, "y": 0},
    )


def _mp_chain3() -> Program:
    # Transitive message passing through two release/acquire hops.
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f1", Lit(1), release=True))
    t2 = A.seq(
        A.Read("r1", "f1", acquire=True), A.Write("f2", Lit(1), release=True)
    )
    t3 = A.seq(A.Read("r2", "f2", acquire=True), A.Read("r3", "d"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2), "3": Thread(t3)},
        client_vars={"d": 0, "f1": 0, "f2": 0},
    )


def _cowr() -> Program:
    # Write-read coherence: a thread never reads older-than-own-write.
    t1 = A.Write("x", Lit(1))
    t2 = A.seq(A.Write("x", Lit(2)), A.Read("r1", "x"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


def _corw() -> Program:
    # Read-write coherence: own write goes after the write just read.
    t1 = A.Write("x", Lit(1))
    t2 = A.seq(A.Read("r1", "x"), A.Write("x", Lit(2)), A.Read("r2", "x"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


def _cas_race() -> Program:
    t1 = A.Cas("r1", "x", Lit(0), Lit(1))
    t2 = A.Cas("r2", "x", Lit(0), Lit(2))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


def _fai_race() -> Program:
    t1 = A.Fai("r1", "x")
    t2 = A.Fai("r2", "x")
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


# ---------------------------------------------------------------------------
# outcome sets
# ---------------------------------------------------------------------------

_ALL_01 = [(a, b) for a in (0, 1) for b in (0, 1)]

LITMUS_TESTS: Tuple[LitmusTest, ...] = (
    LitmusTest(
        name="MP-relaxed",
        build=lambda: _mp(False, False),
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 5), (1, 0), (1, 5)}),
        weak=frozenset({(1, 0)}),
        weak_allowed=True,
        description="message passing, all relaxed: stale data readable",
    ),
    LitmusTest(
        name="MP-RA",
        build=lambda: _mp(True, True),
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 5), (1, 5)}),
        weak=frozenset({(1, 0)}),
        weak_allowed=False,
        description="message passing, release/acquire: publication works",
    ),
    LitmusTest(
        name="MP-release-only",
        build=lambda: _mp(True, False),
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 5), (1, 0), (1, 5)}),
        weak=frozenset({(1, 0)}),
        weak_allowed=True,
        description="release without acquire does not synchronise",
    ),
    LitmusTest(
        name="MP-acquire-only",
        build=lambda: _mp(False, True),
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 5), (1, 0), (1, 5)}),
        weak=frozenset({(1, 0)}),
        weak_allowed=True,
        description="acquire of a relaxed write does not synchronise",
    ),
    LitmusTest(
        name="SB-relaxed",
        build=lambda: _sb(False, False),
        regs=(("1", "r1"), ("2", "r2")),
        allowed=frozenset(_ALL_01),
        weak=frozenset({(0, 0)}),
        weak_allowed=True,
        description="store buffering: both-zero allowed",
    ),
    LitmusTest(
        name="SB-RA",
        build=lambda: _sb(True, True),
        regs=(("1", "r1"), ("2", "r2")),
        allowed=frozenset(_ALL_01),
        weak=frozenset({(0, 0)}),
        weak_allowed=True,
        description="store buffering persists under release/acquire (no SC fences in RAR)",
    ),
    LitmusTest(
        name="LB",
        build=_lb,
        regs=(("1", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 1), (1, 0)}),
        weak=frozenset({(1, 1)}),
        weak_allowed=False,
        description="load buffering cycle: disallowed in RC11 (the RAR restriction)",
    ),
    LitmusTest(
        name="CoRR",
        build=_corr,
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 1), (1, 1)}),
        weak=frozenset({(1, 0)}),
        weak_allowed=False,
        description="read-read coherence: cannot read backwards in mo",
    ),
    LitmusTest(
        name="CoWW",
        build=_coww,
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)}),
        weak=frozenset({(2, 1), (1, 0), (2, 0)}),
        weak_allowed=False,
        description="same-thread writes are mo-ordered; no reading backwards",
    ),
    LitmusTest(
        name="IRIW-RA",
        build=lambda: _iriw(True, True),
        regs=(("3", "a"), ("3", "b"), ("4", "c"), ("4", "d")),
        allowed=frozenset(
            {
                (a, b, c, d)
                for a in (0, 1)
                for b in (0, 1)
                for c in (0, 1)
                for d in (0, 1)
            }
        ),
        weak=frozenset({(1, 0, 1, 0)}),
        weak_allowed=True,
        description="independent reads of independent writes may disagree under RA",
    ),
    LitmusTest(
        name="2+2W-RA",
        build=_two_plus_two_w,
        regs=(("3", "r1"), ("3", "r2")),
        # (2, 0) is forbidden: reading x = 2 acquires t2's view, which has
        # already written y = 1, so y = 0 is no longer observable.
        allowed=frozenset(
            {(x, y) for x in (0, 1, 2) for y in (0, 1, 2)} - {(2, 0)}
        ),
        weak=frozenset({(1, 1)}),
        weak_allowed=True,
        description="2+2W: both variables may end with the 'first' writes",
    ),
    LitmusTest(
        name="WRC-RA",
        build=lambda: _wrc(True),
        regs=(("2", "r1"), ("3", "r2"), ("3", "r3")),
        # (1, 1, 0) forbidden: t2 acquired x = 1 before releasing y = 1,
        # so t3's acquire of y transfers the view of x.
        allowed=frozenset(
            {
                (a, b, c)
                for a in (0, 1)
                for b in (0, 1)
                for c in (0, 1)
            }
            - {(1, 1, 0)}
        ),
        weak=frozenset({(1, 1, 0)}),
        weak_allowed=False,
        description="write-to-read causality: release/acquire is transitive through reads",
    ),
    LitmusTest(
        name="WRC-relaxed",
        build=lambda: _wrc(False),
        regs=(("2", "r1"), ("3", "r2"), ("3", "r3")),
        allowed=frozenset(
            {(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)}
        ),
        weak=frozenset({(1, 1, 0)}),
        weak_allowed=True,
        description="without annotations, causality does not propagate",
    ),
    LitmusTest(
        name="MP-chain-3",
        build=_mp_chain3,
        regs=(("2", "r1"), ("3", "r2"), ("3", "r3")),
        # (1, 1, 0) forbidden: publication is transitive across two hops.
        allowed=frozenset(
            {
                (a, b, c)
                for a in (0, 1)
                for b in (0, 1)
                for c in (0, 5)
            }
            - {(1, 1, 0)}
        ),
        weak=frozenset({(1, 1, 0)}),
        weak_allowed=False,
        description="three-thread transitive message passing",
    ),
    LitmusTest(
        name="CoWR",
        build=_cowr,
        regs=(("2", "r1"),),
        # Reading the other thread's write is allowed (it may be
        # mo-after one's own), but never the initial write.
        allowed=frozenset({(1,), (2,)}),
        weak=frozenset({(0,)}),
        weak_allowed=False,
        description="write-read coherence: never read mo-before own write",
    ),
    LitmusTest(
        name="CoRW",
        build=_corw,
        regs=(("2", "r1"), ("2", "r2")),
        # (1, 1) forbidden: after reading 1, the own write of 2 goes
        # mo-after it, so re-reading 1 is impossible.
        allowed=frozenset({(0, 1), (0, 2), (1, 2)}),
        weak=frozenset({(1, 1)}),
        weak_allowed=False,
        description="read-write coherence: own write goes after the write read",
    ),
    LitmusTest(
        name="CAS-atomicity",
        build=_cas_race,
        regs=(("1", "r1"), ("2", "r2")),
        allowed=frozenset({(True, False), (False, True)}),
        weak=frozenset({(True, True)}),
        weak_allowed=False,
        description="two CASes on the same initial write cannot both succeed",
    ),
    LitmusTest(
        name="FAI-atomicity",
        build=_fai_race,
        regs=(("1", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 1), (1, 0)}),
        weak=frozenset({(0, 0)}),
        weak_allowed=False,
        description="two FAIs dispense distinct values",
    ),
)
