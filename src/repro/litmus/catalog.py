"""Standard weak-memory litmus tests under RC11 RAR (validates Figure 5).

Each test records the outcomes RC11 RAR *allows* for a designated tuple
of registers, split into the interesting ``weak`` outcome(s) and the
expected full outcome set.  The verdicts follow the RC11 literature
[Lahav et al. PLDI'17; Doherty et al. PPoPP'19] for the
relaxed/release/acquire fragment:

* **MP** (message passing), relaxed: stale read allowed; with
  release/acquire: forbidden.
* **SB** (store buffering): the both-read-zero outcome is allowed even
  with release/acquire annotations (forbidding it needs SC fences, which
  RC11 RAR lacks).
* **LB** (load buffering): forbidden outright — RC11 RAR disallows
  load-buffering cycles, and a view-based operational semantics cannot
  produce them (reads read existing writes).
* **CoRR/CoWW/CoRW** coherence shapes: forbidden.
* **IRIW**: the divergent-observation outcome is allowed even under
  release/acquire.
* **2+2W**: both-variables-end-with-first-write allowed under relaxed
  and release/acquire.
* **CAS/FAI atomicity**: two competing RMWs never both succeed against
  the same write.

Alongside the classic straight-line shapes, the catalog carries the
*await/computed* family — the forms these tests actually take when run
on hardware harnesses or compiled from real code: flag waits are
``while (r == 0) r := f`` polling loops, values flow through local
registers, and producers may be duplicated (idempotent publication).
Semantically these add silent (ε) program steps and same-value writes,
which is precisely the structure the reduction layer
(:mod:`repro.semantics.reduce`) collapses; the reduction benchmark
measures its state savings over this catalog.

* **MP-await / MP-chain-await**: message passing with polling
  consumers; publication verdicts match the straight-line forms.
* **MP-ring**: n-thread circular message passing — every thread
  publishes data + flag and polls its successor; under release/acquire
  no stale data is observable anywhere on the ring.
* **MP-2-producers**: two idempotent producers publish the same data;
  the consumer must see it regardless of which release it acquires.
* **IRIW-await**: the divergent-observation verdict survives when the
  first read of each reader is a polling await.
* **SB-computed**: store buffering with register-computed values and
  trailing local arithmetic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.engine.core import ExplorationEngine
from repro.engine.result import summarise
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread


@dataclass(frozen=True)
class LitmusTest:
    """One litmus test: a program, observed registers, and verdicts."""

    name: str
    build: Callable[[], Program]
    regs: Tuple[Tuple[str, str], ...]
    allowed: FrozenSet[Tuple]  # exactly the expected outcome set
    weak: FrozenSet[Tuple]  # the outcomes distinguishing weak memory
    weak_allowed: bool  # does RC11 RAR allow the weak outcome(s)?
    description: str = ""
    #: Exactly the :func:`repro.analysis.analyse_program` finding codes
    #: this program is expected to produce (all warning-severity —
    #: relaxed tests race *by design*); the catalog-wide agreement test
    #: pins them, so a detector change that alters any verdict is a
    #: deliberate, annotated decision.
    expect_lint: FrozenSet[str] = frozenset()

    def outcome_of(self, cfg) -> Tuple:
        """The observed-register valuation of one configuration — the
        single place the ``regs`` encoding is turned into an outcome
        tuple (witness predicates and verdicts must agree on it)."""
        return tuple(cfg.local(t, r) for t, r in self.regs)


def reduction_baseline() -> Optional[Dict[str, int]]:
    """Per-test unreduced state counts from the committed reduction
    benchmark baseline (``benchmarks/BENCH_reduction.json``).

    Lets a reduced run report "states explored vs. states a full
    exploration would store" without re-running the full exploration.
    None when the baseline is not available (e.g. an installed package
    without the benchmarks tree) — callers degrade gracefully.
    """
    path = (
        Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "BENCH_reduction.json"
    )
    try:
        data = json.loads(path.read_text())
        return {
            name: int(entry["off"])
            for name, entry in data["catalog"].items()
        }
    except (OSError, ValueError, KeyError, TypeError):
        return None


def run_litmus(
    test: LitmusTest,
    max_states: int = 500_000,
    engine: Optional[ExplorationEngine] = None,
    use_cache: bool = False,
) -> Dict:
    """Execute a litmus test exhaustively; return verdicts and outcomes.

    With the default arguments this is one sequential in-process
    exploration.  Pass an :class:`~repro.engine.core.ExplorationEngine`
    to pick strategy/workers, and/or ``use_cache=True`` to serve
    repeated runs from the engine's persistent result cache (the CLI's
    default engine is used when caching is requested without an engine).
    """
    if engine is None:
        if use_cache:
            from repro.engine import default_engine

            engine = default_engine()
        else:
            engine = ExplorationEngine()
    if use_cache and engine.cache is not None:
        summary = engine.run(test.build(), max_states=max_states)
    else:
        # Summary-only consumer: let the sharded backend drop per-state
        # payloads once expanded rather than materialising the full map.
        summary = summarise(
            engine.explore(
                test.build(), max_states=max_states, keep_configs=False
            )
        )
    outcomes = summary.terminal_locals(*test.regs)
    weak_observed = bool(outcomes & test.weak)
    verdict = {
        "name": test.name,
        "outcomes": outcomes,
        "expected": test.allowed,
        "matches_expected": outcomes == set(test.allowed),
        "weak_observed": weak_observed,
        "weak_allowed": test.weak_allowed,
        "verdict_ok": weak_observed == test.weak_allowed
        and outcomes == set(test.allowed),
        "states": summary.state_count,
        "cached": summary.cached,
        "reduction": engine.reduction,
    }
    if not verdict["verdict_ok"]:
        verdict["witness"] = _violation_witness(
            test, engine, max_states, outcomes
        )
    return verdict


def _violation_witness(
    test: LitmusTest, engine: ExplorationEngine, max_states: int, outcomes
):
    """The schedule of an execution exhibiting a forbidden outcome.

    Only *presence* violations have an execution to show — an outcome
    observed though outside the expected set, or a weak outcome
    observed though the model forbids it; an expected-but-absent
    outcome has no witness, and a truncated-inconclusive extraction
    search degrades to None (the verdict already failed; only genuine
    reconstruction bugs propagate).  The schedule is JSON-safe: one
    rendered step per line, ready for the batch report.
    """
    from repro.util.errors import VerificationError

    bad = set(outcomes) - set(test.allowed)
    if not test.weak_allowed:
        bad |= set(outcomes) & set(test.weak)
    if not bad:
        return None
    try:
        witness = engine.find_witness(
            test.build(),
            lambda cfg: test.outcome_of(cfg) in bad,
            max_states=max_states,
            terminal_only=True,
        )
    except VerificationError:
        return None
    if witness is None:
        return None
    return [step.describe() for step in witness.steps]


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------


def _mp(release: bool, acquire: bool) -> Program:
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(1), release=release))
    t2 = A.seq(A.Read("r1", "f", acquire=acquire), A.Read("r2", "d"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"d": 0, "f": 0},
    )


def _sb(release: bool, acquire: bool) -> Program:
    t1 = A.seq(A.Write("x", Lit(1), release=release), A.Read("r1", "y", acquire=acquire))
    t2 = A.seq(A.Write("y", Lit(1), release=release), A.Read("r2", "x", acquire=acquire))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0, "y": 0},
    )


def _lb() -> Program:
    t1 = A.seq(A.Read("r1", "x"), A.Write("y", Lit(1)))
    t2 = A.seq(A.Read("r2", "y"), A.Write("x", Lit(1)))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0, "y": 0},
    )


def _corr() -> Program:
    t1 = A.Write("x", Lit(1))
    t2 = A.seq(A.Read("r1", "x"), A.Read("r2", "x"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


def _coww() -> Program:
    # Same thread writes 1 then 2; a reader that sees 2 then reads again
    # must not see 1 (coherence of a single thread's writes).
    t1 = A.seq(A.Write("x", Lit(1)), A.Write("x", Lit(2)))
    t2 = A.seq(A.Read("r1", "x"), A.Read("r2", "x"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


def _iriw(release: bool, acquire: bool) -> Program:
    t1 = A.Write("x", Lit(1), release=release)
    t2 = A.Write("y", Lit(1), release=release)
    t3 = A.seq(A.Read("a", "x", acquire=acquire), A.Read("b", "y", acquire=acquire))
    t4 = A.seq(A.Read("c", "y", acquire=acquire), A.Read("d", "x", acquire=acquire))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2), "3": Thread(t3), "4": Thread(t4)},
        client_vars={"x": 0, "y": 0},
    )


def _two_plus_two_w() -> Program:
    t1 = A.seq(A.Write("x", Lit(1), release=True), A.Write("y", Lit(2), release=True))
    t2 = A.seq(A.Write("y", Lit(1), release=True), A.Write("x", Lit(2), release=True))
    t3 = A.seq(A.Read("r1", "x", acquire=True), A.Read("r2", "y", acquire=True))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2), "3": Thread(t3)},
        client_vars={"x": 0, "y": 0},
    )


def _wrc(ra: bool) -> Program:
    # Write-to-read causality: does observing a write transfer the
    # writer's *reads*' causes?
    t1 = A.Write("x", Lit(1), release=ra)
    t2 = A.seq(
        A.Read("r1", "x", acquire=ra), A.Write("y", Lit(1), release=ra)
    )
    t3 = A.seq(A.Read("r2", "y", acquire=ra), A.Read("r3", "x", acquire=ra))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2), "3": Thread(t3)},
        client_vars={"x": 0, "y": 0},
    )


def _mp_chain3() -> Program:
    # Transitive message passing through two release/acquire hops.
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f1", Lit(1), release=True))
    t2 = A.seq(
        A.Read("r1", "f1", acquire=True), A.Write("f2", Lit(1), release=True)
    )
    t3 = A.seq(A.Read("r2", "f2", acquire=True), A.Read("r3", "d"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2), "3": Thread(t3)},
        client_vars={"d": 0, "f1": 0, "f2": 0},
    )


def _cowr() -> Program:
    # Write-read coherence: a thread never reads older-than-own-write.
    t1 = A.Write("x", Lit(1))
    t2 = A.seq(A.Write("x", Lit(2)), A.Read("r1", "x"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


def _corw() -> Program:
    # Read-write coherence: own write goes after the write just read.
    t1 = A.Write("x", Lit(1))
    t2 = A.seq(A.Read("r1", "x"), A.Write("x", Lit(2)), A.Read("r2", "x"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


def _cas_race() -> Program:
    t1 = A.Cas("r1", "x", Lit(0), Lit(1))
    t2 = A.Cas("r2", "x", Lit(0), Lit(2))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


def _fai_race() -> Program:
    t1 = A.Fai("r1", "x")
    t2 = A.Fai("r2", "x")
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0},
    )


# -- await/computed family ---------------------------------------------------


def _await(reg: str, var: str, acquire: bool) -> A.Node:
    """``reg := 0; while reg == 0: reg := var`` — a polling flag wait."""
    return A.seq(
        A.LocalAssign(reg, Lit(0)),
        A.While(Reg(reg).eq(0), A.Read(reg, var, acquire=acquire)),
    )


def _mp_await(ra: bool) -> Program:
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(1), release=ra))
    t2 = A.seq(_await("r1", "f", acquire=ra), A.Read("r2", "d"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"d": 0, "f": 0},
    )


def _mp_await_two_consumers() -> Program:
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(1), release=True))
    c1 = A.seq(_await("a", "f", acquire=True), A.Read("r1", "d"))
    c2 = A.seq(_await("b", "f", acquire=True), A.Read("r2", "d"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(c1), "3": Thread(c2)},
        client_vars={"d": 0, "f": 0},
    )


def _mp_two_producers() -> Program:
    # Idempotent publication: both producers write the same data and
    # flag values, so whichever release the consumer's await acquires,
    # the data must be visible.
    producer = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(1), release=True))
    consumer = A.seq(_await("r1", "f", acquire=True), A.Read("r2", "d"))
    return Program(
        threads={
            "1": Thread(producer),
            "2": Thread(producer),
            "3": Thread(consumer),
        },
        client_vars={"d": 0, "f": 0},
    )


def _mp_chain_await(hops: int) -> Program:
    # Transitive message passing: each intermediate thread polls the
    # previous flag before releasing the next one.
    threads = {
        "1": Thread(
            A.seq(A.Write("d", Lit(5)), A.Write("f1", Lit(1), release=True))
        )
    }
    for i in range(2, hops):
        threads[str(i)] = Thread(
            A.seq(
                _await(f"a{i}", f"f{i - 1}", acquire=True),
                A.Write(f"f{i}", Lit(1), release=True),
            )
        )
    threads[str(hops)] = Thread(
        A.seq(_await(f"a{hops}", f"f{hops - 1}", acquire=True), A.Read("r", "d"))
    )
    client_vars = {"d": 0}
    client_vars.update({f"f{i}": 0 for i in range(1, hops)})
    return Program(threads=threads, client_vars=client_vars)


def _mp_ring(n: int, ra: bool) -> Program:
    # Circular message passing: thread i publishes (d_i, f_i) and polls
    # f_{i+1} before reading d_{i+1}.
    threads = {}
    client_vars = {}
    for i in range(n):
        j = (i + 1) % n
        threads[str(i + 1)] = Thread(
            A.seq(
                A.Write(f"d{i}", Lit(5)),
                A.Write(f"f{i}", Lit(1), release=ra),
                _await(f"a{i}", f"f{j}", acquire=ra),
                A.Read(f"r{i}", f"d{j}"),
            )
        )
        client_vars[f"d{i}"] = 0
        client_vars[f"f{i}"] = 0
    return Program(threads=threads, client_vars=client_vars)


def _iriw_await() -> Program:
    w1 = A.Write("x", Lit(1), release=True)
    w2 = A.Write("y", Lit(1), release=True)
    r3 = A.seq(_await("a", "x", acquire=True), A.Read("b", "y", acquire=True))
    r4 = A.seq(_await("c", "y", acquire=True), A.Read("d", "x", acquire=True))
    return Program(
        threads={
            "1": Thread(w1),
            "2": Thread(w2),
            "3": Thread(r3),
            "4": Thread(r4),
        },
        client_vars={"x": 0, "y": 0},
    )


def _sb_computed() -> Program:
    # Store buffering as compiled code: values come from registers and
    # each thread ends with local arithmetic over what it read.
    t1 = A.seq(
        A.LocalAssign("v", Lit(1)),
        A.Write("x", Reg("v"), release=True),
        A.Read("r1", "y", acquire=True),
        A.LocalAssign("s1", Reg("r1") + 1),
    )
    t2 = A.seq(
        A.LocalAssign("v", Lit(1)),
        A.Write("y", Reg("v"), release=True),
        A.Read("r2", "x", acquire=True),
        A.LocalAssign("s2", Reg("r2") + 1),
    )
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0, "y": 0},
    )


# ---------------------------------------------------------------------------
# outcome sets
# ---------------------------------------------------------------------------

_ALL_01 = [(a, b) for a in (0, 1) for b in (0, 1)]

#: Shorthand for the statically-racy annotation (see
#: ``LitmusTest.expect_lint``).
_RACE = frozenset({"race"})

LITMUS_TESTS: Tuple[LitmusTest, ...] = (
    LitmusTest(
        name="MP-relaxed",
        build=lambda: _mp(False, False),
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 5), (1, 0), (1, 5)}),
        weak=frozenset({(1, 0)}),
        weak_allowed=True,
        description="message passing, all relaxed: stale data readable",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="MP-RA",
        build=lambda: _mp(True, True),
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 5), (1, 5)}),
        weak=frozenset({(1, 0)}),
        weak_allowed=False,
        description="message passing, release/acquire: publication works",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="MP-release-only",
        build=lambda: _mp(True, False),
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 5), (1, 0), (1, 5)}),
        weak=frozenset({(1, 0)}),
        weak_allowed=True,
        description="release without acquire does not synchronise",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="MP-acquire-only",
        build=lambda: _mp(False, True),
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 5), (1, 0), (1, 5)}),
        weak=frozenset({(1, 0)}),
        weak_allowed=True,
        description="acquire of a relaxed write does not synchronise",
        expect_lint=_RACE | {"unmatched-acquire"},
    ),
    LitmusTest(
        name="SB-relaxed",
        build=lambda: _sb(False, False),
        regs=(("1", "r1"), ("2", "r2")),
        allowed=frozenset(_ALL_01),
        weak=frozenset({(0, 0)}),
        weak_allowed=True,
        description="store buffering: both-zero allowed",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="SB-RA",
        build=lambda: _sb(True, True),
        regs=(("1", "r1"), ("2", "r2")),
        allowed=frozenset(_ALL_01),
        weak=frozenset({(0, 0)}),
        weak_allowed=True,
        description="store buffering persists under release/acquire (no SC fences in RAR)",
    ),
    LitmusTest(
        name="LB",
        build=_lb,
        regs=(("1", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 1), (1, 0)}),
        weak=frozenset({(1, 1)}),
        weak_allowed=False,
        description="load buffering cycle: disallowed in RC11 (the RAR restriction)",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="CoRR",
        build=_corr,
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 1), (1, 1)}),
        weak=frozenset({(1, 0)}),
        weak_allowed=False,
        description="read-read coherence: cannot read backwards in mo",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="CoWW",
        build=_coww,
        regs=(("2", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)}),
        weak=frozenset({(2, 1), (1, 0), (2, 0)}),
        weak_allowed=False,
        description="same-thread writes are mo-ordered; no reading backwards",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="IRIW-RA",
        build=lambda: _iriw(True, True),
        regs=(("3", "a"), ("3", "b"), ("4", "c"), ("4", "d")),
        allowed=frozenset(
            {
                (a, b, c, d)
                for a in (0, 1)
                for b in (0, 1)
                for c in (0, 1)
                for d in (0, 1)
            }
        ),
        weak=frozenset({(1, 0, 1, 0)}),
        weak_allowed=True,
        description="independent reads of independent writes may disagree under RA",
    ),
    LitmusTest(
        name="2+2W-RA",
        build=_two_plus_two_w,
        regs=(("3", "r1"), ("3", "r2")),
        # (2, 0) is forbidden: reading x = 2 acquires t2's view, which has
        # already written y = 1, so y = 0 is no longer observable.
        allowed=frozenset(
            {(x, y) for x in (0, 1, 2) for y in (0, 1, 2)} - {(2, 0)}
        ),
        weak=frozenset({(1, 1)}),
        weak_allowed=True,
        description="2+2W: both variables may end with the 'first' writes",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="WRC-RA",
        build=lambda: _wrc(True),
        regs=(("2", "r1"), ("3", "r2"), ("3", "r3")),
        # (1, 1, 0) forbidden: t2 acquired x = 1 before releasing y = 1,
        # so t3's acquire of y transfers the view of x.
        allowed=frozenset(
            {
                (a, b, c)
                for a in (0, 1)
                for b in (0, 1)
                for c in (0, 1)
            }
            - {(1, 1, 0)}
        ),
        weak=frozenset({(1, 1, 0)}),
        weak_allowed=False,
        description="write-to-read causality: release/acquire is transitive through reads",
    ),
    LitmusTest(
        name="WRC-relaxed",
        build=lambda: _wrc(False),
        regs=(("2", "r1"), ("3", "r2"), ("3", "r3")),
        allowed=frozenset(
            {(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)}
        ),
        weak=frozenset({(1, 1, 0)}),
        weak_allowed=True,
        description="without annotations, causality does not propagate",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="MP-chain-3",
        build=_mp_chain3,
        regs=(("2", "r1"), ("3", "r2"), ("3", "r3")),
        # (1, 1, 0) forbidden: publication is transitive across two hops.
        allowed=frozenset(
            {
                (a, b, c)
                for a in (0, 1)
                for b in (0, 1)
                for c in (0, 5)
            }
            - {(1, 1, 0)}
        ),
        weak=frozenset({(1, 1, 0)}),
        weak_allowed=False,
        description="three-thread transitive message passing",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="CoWR",
        build=_cowr,
        regs=(("2", "r1"),),
        # Reading the other thread's write is allowed (it may be
        # mo-after one's own), but never the initial write.
        allowed=frozenset({(1,), (2,)}),
        weak=frozenset({(0,)}),
        weak_allowed=False,
        description="write-read coherence: never read mo-before own write",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="CoRW",
        build=_corw,
        regs=(("2", "r1"), ("2", "r2")),
        # (1, 1) forbidden: after reading 1, the own write of 2 goes
        # mo-after it, so re-reading 1 is impossible.
        allowed=frozenset({(0, 1), (0, 2), (1, 2)}),
        weak=frozenset({(1, 1)}),
        weak_allowed=False,
        description="read-write coherence: own write goes after the write read",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="CAS-atomicity",
        build=_cas_race,
        regs=(("1", "r1"), ("2", "r2")),
        allowed=frozenset({(True, False), (False, True)}),
        weak=frozenset({(True, True)}),
        weak_allowed=False,
        description="two CASes on the same initial write cannot both succeed",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="FAI-atomicity",
        build=_fai_race,
        regs=(("1", "r1"), ("2", "r2")),
        allowed=frozenset({(0, 1), (1, 0)}),
        weak=frozenset({(0, 0)}),
        weak_allowed=False,
        description="two FAIs dispense distinct values",
    ),
    # -- await/computed family ----------------------------------------------
    LitmusTest(
        name="MP-await-RA",
        build=lambda: _mp_await(True),
        regs=(("2", "r2"),),
        # The await exits only after acquiring the released flag, so the
        # data is certainly visible.
        allowed=frozenset({(5,)}),
        weak=frozenset({(0,)}),
        weak_allowed=False,
        description="message passing with a polling acquire loop",
    ),
    LitmusTest(
        name="MP-await-relaxed",
        build=lambda: _mp_await(False),
        regs=(("2", "r2"),),
        allowed=frozenset({(0,), (5,)}),
        weak=frozenset({(0,)}),
        weak_allowed=True,
        description="a relaxed polling loop does not publish the data",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="MP-await-2-consumers",
        build=_mp_await_two_consumers,
        regs=(("2", "r1"), ("3", "r2")),
        allowed=frozenset({(5, 5)}),
        weak=frozenset({(0, 0), (0, 5), (5, 0)}),
        weak_allowed=False,
        description="both polling consumers observe the publication",
    ),
    LitmusTest(
        name="MP-2-producers",
        build=_mp_two_producers,
        regs=(("3", "r2"),),
        # Whichever producer's release the consumer acquires, that
        # producer had already written d = 5 — and both write the same
        # values, so the stale read is forbidden.
        allowed=frozenset({(5,)}),
        weak=frozenset({(0,)}),
        weak_allowed=False,
        description="idempotent dual publication: either release suffices",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="MP-chain-await-3",
        build=lambda: _mp_chain_await(3),
        regs=(("3", "r"),),
        allowed=frozenset({(5,)}),
        weak=frozenset({(0,)}),
        weak_allowed=False,
        description="transitive message passing through polling hops",
    ),
    LitmusTest(
        name="MP-chain-await-4",
        build=lambda: _mp_chain_await(4),
        regs=(("4", "r"),),
        allowed=frozenset({(5,)}),
        weak=frozenset({(0,)}),
        weak_allowed=False,
        description="three-hop polling publication chain",
    ),
    LitmusTest(
        name="MP-ring-2-RA",
        build=lambda: _mp_ring(2, True),
        regs=(("1", "r0"), ("2", "r1")),
        allowed=frozenset({(5, 5)}),
        weak=frozenset({(0, 0), (0, 5), (5, 0)}),
        weak_allowed=False,
        description="two-thread publication ring: no stale data anywhere",
    ),
    LitmusTest(
        name="MP-ring-2-relaxed",
        build=lambda: _mp_ring(2, False),
        regs=(("1", "r0"), ("2", "r1")),
        allowed=frozenset({(a, b) for a in (0, 5) for b in (0, 5)}),
        weak=frozenset({(0, 0)}),
        weak_allowed=True,
        description="a relaxed ring publishes nothing",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="MP-ring-3-RA",
        build=lambda: _mp_ring(3, True),
        regs=(("1", "r0"), ("2", "r1"), ("3", "r2")),
        allowed=frozenset({(5, 5, 5)}),
        weak=frozenset({(0, 0, 0), (5, 5, 0), (0, 5, 5), (5, 0, 5)}),
        weak_allowed=False,
        description="three-thread publication ring under release/acquire",
    ),
    LitmusTest(
        name="MP-ring-3-relaxed",
        build=lambda: _mp_ring(3, False),
        regs=(("1", "r0"), ("2", "r1"), ("3", "r2")),
        allowed=frozenset(
            {(a, b, c) for a in (0, 5) for b in (0, 5) for c in (0, 5)}
        ),
        weak=frozenset({(0, 0, 0)}),
        weak_allowed=True,
        description="three-thread relaxed ring: every stale combination",
        expect_lint=_RACE,
    ),
    LitmusTest(
        name="IRIW-await-RA",
        build=_iriw_await,
        regs=(("3", "b"), ("4", "d")),
        # After awaiting its own flag each reader may still miss the
        # other: the divergent observation (0, 0) survives polling.
        allowed=frozenset({(b, d) for b in (0, 1) for d in (0, 1)}),
        weak=frozenset({(0, 0)}),
        weak_allowed=True,
        description="IRIW with polling first reads still diverges",
    ),
    LitmusTest(
        name="SB-computed",
        build=_sb_computed,
        regs=(("1", "r1"), ("2", "r2")),
        allowed=frozenset(_ALL_01),
        weak=frozenset({(0, 0)}),
        weak_allowed=True,
        description="store buffering survives register-computed values",
    ),
)
